// Unit tests for the worker-centric scheduler: the three
// CalculateWeight() metrics, ChooseTask(n), the incremental index, and
// the degenerate cases the paper leaves implicit.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "fake_engine.h"
#include "sched/worker_centric.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

WorkerCentricScheduler make_sched(Metric m, int n = 1,
                                  CombinedFormula f = CombinedFormula::kProse,
                                  std::uint64_t seed = 7) {
  WorkerCentricParams p;
  p.metric = m;
  p.choose_n = n;
  p.combined_formula = f;
  p.seed = seed;
  return WorkerCentricScheduler(p);
}

// Job: t0 needs {0,1}, t1 needs {1,2,3}, t2 needs {4}.
workload::Job tiny_job() { return make_job({{0, 1}, {1, 2, 3}, {4}}, 5); }

TEST(Naming, MatchesPaperLabels) {
  EXPECT_EQ(make_sched(Metric::kOverlap).name(), "overlap");
  EXPECT_EQ(make_sched(Metric::kRest).name(), "rest");
  EXPECT_EQ(make_sched(Metric::kCombined).name(), "combined");
  EXPECT_EQ(make_sched(Metric::kRest, 2).name(), "rest.2");
  EXPECT_EQ(make_sched(Metric::kCombined, 2).name(), "combined.2");
  EXPECT_EQ(make_sched(Metric::kCombined, 2, CombinedFormula::kVerbatim).name(),
            "combined~verbatim.2");
}

TEST(Naming, RejectsZeroN) {
  WorkerCentricParams p;
  p.choose_n = 0;
  EXPECT_THROW(WorkerCentricScheduler{p}, std::logic_error);
}

// --- Overlap metric -------------------------------------------------------

TEST(OverlapMetric, CountsResidentFiles) {
  auto job = tiny_job();
  FakeEngine eng(job, 2, 1);
  auto sched = make_sched(Metric::kOverlap);
  sched.attach(eng);
  sched.on_job_submitted();

  eng.add_file(SiteId(0), FileId(1));
  eng.add_file(SiteId(0), FileId(2));

  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(0)), 1.0);  // {1}
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 2.0);  // {1,2}
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(2)), 0.0);
  // Other site unaffected.
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(1), TaskId(1)), 0.0);
}

TEST(OverlapMetric, PicksMaxOverlapTask) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kOverlap);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(2));
  eng.add_file(SiteId(0), FileId(3));
  sched.on_worker_idle(WorkerId(0));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(1));
}

TEST(OverlapMetric, ColdCacheTieBreaksToLowestTaskId) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kOverlap);
  sched.attach(eng);
  sched.on_job_submitted();
  sched.on_worker_idle(WorkerId(0));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
}

TEST(OverlapMetric, EvictionLowersWeight) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1, /*capacity=*/2);
  auto sched = make_sched(Metric::kOverlap);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(1));
  eng.add_file(SiteId(0), FileId(2));
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 2.0);
  eng.add_file(SiteId(0), FileId(4));  // evicts LRU file 1
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 1.0);
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(2)), 1.0);
}

// --- Rest metric ----------------------------------------------------------

TEST(RestMetric, InverseOfMissingFiles) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kRest);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(1));
  // t0: 1 missing -> 1.0; t1: 2 missing -> 0.5; t2: 1 missing -> 1.0.
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(0)), 1.0);
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 0.5);
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(2)), 1.0);
}

TEST(RestMetric, FullyResidentTaskBeatsEverything) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kRest);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(0));
  eng.add_file(SiteId(0), FileId(1));
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(0)),
                   kFullOverlapRestWeight);
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
}

TEST(RestMetric, PrefersFewerTransfersOverMoreOverlap) {
  // t0 needs 10 files, 8 resident (2 missing, overlap 8).
  // t1 needs 2 files, 1 resident (1 missing, overlap 1).
  // overlap would pick t0; rest must pick t1.
  auto job = make_job({{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {10, 11}}, 12);
  FakeEngine eng(job, 1, 1);
  auto rest = make_sched(Metric::kRest);
  rest.attach(eng);
  rest.on_job_submitted();
  for (unsigned f : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 10u})
    eng.add_file(SiteId(0), FileId(f));
  rest.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng.assignments[0].first, TaskId(1));

  FakeEngine eng2(job, 1, 1);
  auto overlap = make_sched(Metric::kOverlap);
  overlap.attach(eng2);
  overlap.on_job_submitted();
  for (unsigned f : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 10u})
    eng2.add_file(SiteId(0), FileId(f));
  overlap.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng2.assignments[0].first, TaskId(0));
}

// --- Combined metric ------------------------------------------------------

TEST(CombinedMetric, ProseFormulaHandComputed) {
  // Two tasks: t0 = {0,1}, t1 = {1,2,3}. Site cache: {1} accessed twice,
  // {2} accessed once.
  auto job = make_job({{0, 1}, {1, 2, 3}}, 4);
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kCombined);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(1));
  eng.cache(SiteId(0)).record_access(FileId(1));  // r_1 = 2
  eng.add_file(SiteId(0), FileId(2));             // r_2 = 1

  // ref_t0 = r_1 = 2; ref_t1 = r_1 + r_2 = 3; totalRef = 5.
  // rest_t0 = 1/(2-1) = 1; rest_t1 = 1/(3-2) = 1; totalRest = 2.
  // prose: w = ref/totalRef + rest/totalRest.
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(0)), 2.0 / 5.0 + 0.5);
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 3.0 / 5.0 + 0.5);
}

TEST(CombinedMetric, VerbatimFormulaHandComputed) {
  auto job = make_job({{0, 1}, {1, 2, 3}}, 4);
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kCombined, 1, CombinedFormula::kVerbatim);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(1));
  eng.cache(SiteId(0)).record_access(FileId(1));
  eng.add_file(SiteId(0), FileId(2));
  // verbatim: w = ref/totalRef + totalRest/rest.
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(0)), 2.0 / 5.0 + 2.0 / 1.0);
  EXPECT_DOUBLE_EQ(sched.weight(SiteId(0), TaskId(1)), 3.0 / 5.0 + 2.0 / 1.0);
}

TEST(CombinedMetric, ZeroTotalRefIsSafe) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kCombined);
  sched.attach(eng);
  sched.on_job_submitted();
  // Cold cache: totalRef = 0; weights must still be finite and positive.
  double w = sched.weight(SiteId(0), TaskId(0));
  EXPECT_GT(w, 0.0);
  EXPECT_TRUE(std::isfinite(w));
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng.assignments.size(), 1u);
}

TEST(CombinedMetric, PastReferencesBreakRestTies) {
  // t0 = {0,1}, t1 = {2,3}; both have 1 resident + 1 missing, but t0's
  // resident file has more past references -> combined prefers t0.
  auto job = make_job({{0, 1}, {2, 3}}, 4);
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kCombined);
  sched.attach(eng);
  sched.on_job_submitted();
  eng.add_file(SiteId(0), FileId(0));
  eng.cache(SiteId(0)).record_access(FileId(0));
  eng.cache(SiteId(0)).record_access(FileId(0));  // r_0 = 3
  eng.add_file(SiteId(0), FileId(2));             // r_2 = 1
  EXPECT_GT(sched.weight(SiteId(0), TaskId(0)),
            sched.weight(SiteId(0), TaskId(1)));
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
}

// --- ChooseTask(n) --------------------------------------------------------

TEST(ChooseTask, N1IsDeterministic) {
  auto job = tiny_job();
  for (int rep = 0; rep < 5; ++rep) {
    FakeEngine eng(job, 1, 1);
    auto sched = make_sched(Metric::kRest, 1, CombinedFormula::kProse,
                            /*seed=*/static_cast<std::uint64_t>(rep));
    sched.attach(eng);
    sched.on_job_submitted();
    eng.add_file(SiteId(0), FileId(4));
    sched.on_worker_idle(WorkerId(0));
    EXPECT_EQ(eng.assignments[0].first, TaskId(2));  // fully resident
  }
}

TEST(ChooseTask, N2SamplesproportionallyToWeight) {
  // t0: weight 1.0 (1 missing), t1: weight 0.5 (2 missing), t2: weight
  // 1.0... make weights distinct: use job where t0 -> 1.0, t1 -> 0.5.
  auto job = make_job({{0}, {1, 2}, {3, 4, 5, 6}}, 7);
  std::map<unsigned, int> picks;
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    FakeEngine eng(job, 1, 1);
    auto sched = make_sched(Metric::kRest, 2, CombinedFormula::kProse, seed);
    sched.attach(eng);
    sched.on_job_submitted();
    sched.on_worker_idle(WorkerId(0));
    ++picks[eng.assignments[0].first.value()];
  }
  // Weights: t0 = 1, t1 = 0.5, t2 = 0.25. Best-2 = {t0, t1}; sampled 2:1.
  EXPECT_EQ(picks.count(2), 0u);
  double ratio = static_cast<double>(picks[0]) / picks[1];
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.7);
}

TEST(ChooseTask, NLargerThanPendingIsSafe) {
  auto job = make_job({{0}, {1}}, 2);
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kRest, 8);
  sched.attach(eng);
  sched.on_job_submitted();
  sched.on_worker_idle(WorkerId(0));
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(eng.assignments.size(), 2u);
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(ChooseTask, AllZeroWeightsSampleUniformlyAmongBestN) {
  auto job = tiny_job();
  std::map<unsigned, int> picks;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    FakeEngine eng(job, 1, 1);
    auto sched = make_sched(Metric::kOverlap, 2, CombinedFormula::kProse, seed);
    sched.attach(eng);
    sched.on_job_submitted();
    sched.on_worker_idle(WorkerId(0));  // cold cache: all weights 0
    ++picks[eng.assignments[0].first.value()];
  }
  // Best-2 by (0, task asc) = {t0, t1}, sampled uniformly.
  EXPECT_EQ(picks.count(2), 0u);
  EXPECT_NEAR(picks[0], 200, 60);
  EXPECT_NEAR(picks[1], 200, 60);
}

// --- Bookkeeping ----------------------------------------------------------

TEST(Pending, AssignedTasksLeaveThePool) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kRest);
  sched.attach(eng);
  sched.on_job_submitted();
  EXPECT_EQ(sched.pending_count(), 3u);
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(sched.pending_count(), 2u);
  EXPECT_FALSE(sched.is_pending(eng.assignments[0].first));
  sched.on_worker_idle(WorkerId(0));
  sched.on_worker_idle(WorkerId(0));
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Pending, EmptyBagLeavesWorkerUnassigned) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 1);
  auto sched = make_sched(Metric::kRest);
  sched.attach(eng);
  sched.on_job_submitted();
  sched.on_worker_idle(WorkerId(0));
  sched.on_worker_idle(WorkerId(0));  // nothing left
  EXPECT_EQ(eng.assignments.size(), 1u);
}

TEST(Pending, EachTaskAssignedExactlyOnce) {
  auto job = tiny_job();
  FakeEngine eng(job, 2, 2);
  auto sched = make_sched(Metric::kCombined);
  sched.attach(eng);
  sched.on_job_submitted();
  for (unsigned w = 0; w < 4; ++w) sched.on_worker_idle(WorkerId(w));
  ASSERT_EQ(eng.assignments.size(), 3u);
  std::set<unsigned> seen;
  for (auto& [t, w] : eng.assignments) EXPECT_TRUE(seen.insert(t.value()).second);
}

TEST(Index, WarmStartCachesAreIndexed) {
  auto job = tiny_job();
  FakeEngine eng(job, 1, 1);
  eng.add_file(SiteId(0), FileId(1));  // pre-warm BEFORE submit
  auto sched = make_sched(Metric::kOverlap);
  sched.attach(eng);
  sched.on_job_submitted();
  EXPECT_EQ(sched.overlap_cardinality(SiteId(0), TaskId(0)), 1u);
  EXPECT_EQ(sched.overlap_cardinality(SiteId(0), TaskId(1)), 1u);
}

// --- Incremental index == naive recomputation (the key property) ----------

class IndexConsistency
    : public ::testing::TestWithParam<std::tuple<Metric, std::uint64_t>> {};

TEST_P(IndexConsistency, IncrementalMatchesNaiveUnderChurn) {
  auto [metric, seed] = GetParam();
  Rng rng(seed);
  // Random job over a small universe, small caches => plenty of eviction.
  std::vector<std::vector<unsigned>> sets;
  const unsigned kFiles = 30;
  for (int t = 0; t < 12; ++t) {
    std::set<unsigned> files;
    while (files.size() < 3 + rng.index(5))
      files.insert(static_cast<unsigned>(rng.index(kFiles)));
    sets.emplace_back(files.begin(), files.end());
  }
  auto job = make_job(sets, kFiles);
  FakeEngine eng(job, 2, 1, /*capacity=*/8);
  WorkerCentricParams params;
  params.metric = metric;
  params.choose_n = 1;
  WorkerCentricScheduler sched(params);
  sched.attach(eng);
  sched.on_job_submitted();

  for (int step = 0; step < 300; ++step) {
    SiteId site(static_cast<SiteId::underlying_type>(rng.index(2)));
    eng.add_file(site, FileId(static_cast<unsigned>(rng.index(kFiles))));
    if (step % 10 == 0) {
      for (unsigned s = 0; s < 2; ++s)
        for (const workload::Task& t : job.tasks())
          if (sched.is_pending(t.id)) {
            ASSERT_NEAR(sched.weight(SiteId(s), t.id),
                        sched.naive_weight(SiteId(s), t.id), 1e-9)
                << "metric=" << to_string(metric) << " step=" << step;
          }
    }
    if (step == 150) {
      // Retire a task mid-stream; the index must stay consistent.
      for (const workload::Task& t : job.tasks())
        if (sched.is_pending(t.id)) {
          sched.on_worker_idle(WorkerId(0));
          break;
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, IndexConsistency,
    ::testing::Combine(::testing::Values(Metric::kOverlap, Metric::kRest,
                                         Metric::kCombined),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// --- Incremental totals == naive totals (the choose_task fast path) -------

// Recomputes (totalRef, totalRest) the way the paper defines them: a
// scan over every pending task against the live cache.
std::pair<double, double> naive_totals(const WorkerCentricScheduler& sched,
                                       const FakeEngine& eng, SiteId site) {
  const workload::Job& job = eng.job();
  const storage::FileCache& cache = eng.site_cache(site);
  double total_ref = 0;
  double total_rest = 0;
  for (const workload::Task& t : job.tasks()) {
    if (!sched.is_pending(t.id)) continue;
    std::size_t overlap = 0;
    std::uint64_t refs = 0;
    for (FileId f : t.files) {
      if (cache.contains(f)) {
        ++overlap;
        refs += cache.ref_count(f);
      }
    }
    total_ref += static_cast<double>(refs);
    const std::size_t missing = t.files.size() - overlap;
    total_rest += missing == 0 ? kFullOverlapRestWeight
                               : 1.0 / static_cast<double>(missing);
  }
  return {total_ref, total_rest};
}

void expect_totals_match(const WorkerCentricScheduler& sched,
                         const FakeEngine& eng, std::size_t num_sites,
                         const char* where) {
  for (std::size_t s = 0; s < num_sites; ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    auto [inc_ref, inc_rest] = sched.totals_of(site);
    auto [ref, rest] = naive_totals(sched, eng, site);
    EXPECT_DOUBLE_EQ(inc_ref, ref) << where << " site " << s;
    EXPECT_NEAR(inc_rest, rest, 1e-9) << where << " site " << s;
  }
}

TEST(IncrementalTotals, SurviveAssignEvictFailReAddChurn) {
  // Small caches force eviction; two sites; enough tasks that the bag
  // stays busy across the whole churn sequence.
  Rng rng(99);
  std::vector<std::vector<unsigned>> sets;
  const unsigned kFiles = 24;
  for (int t = 0; t < 10; ++t) {
    std::set<unsigned> files;
    while (files.size() < 2 + rng.index(4))
      files.insert(static_cast<unsigned>(rng.index(kFiles)));
    sets.emplace_back(files.begin(), files.end());
  }
  auto job = make_job(sets, kFiles);
  FakeEngine eng(job, 2, 2, /*capacity=*/6);
  auto sched = make_sched(Metric::kCombined);
  sched.attach(eng);
  sched.on_job_submitted();
  expect_totals_match(sched, eng, 2, "after submit");

  // Warm the caches (accesses + inserts + evictions).
  for (int i = 0; i < 40; ++i)
    eng.add_file(SiteId(static_cast<SiteId::underlying_type>(rng.index(2))),
                 FileId(static_cast<unsigned>(rng.index(kFiles))));
  expect_totals_match(sched, eng, 2, "after warmup");

  // Assign: tasks leave the pending bag.
  sched.on_worker_idle(WorkerId(0));
  sched.on_worker_idle(WorkerId(2));  // second site's worker
  sched.on_worker_idle(WorkerId(1));
  ASSERT_EQ(eng.assignments.size(), 3u);
  expect_totals_match(sched, eng, 2, "after assign");

  // Evict: more churn while tasks are out of the bag.
  for (int i = 0; i < 30; ++i)
    eng.add_file(SiteId(static_cast<SiteId::underlying_type>(rng.index(2))),
                 FileId(static_cast<unsigned>(rng.index(kFiles))));
  expect_totals_match(sched, eng, 2, "after evictions");

  // Complete one instance, then fail the worker holding another: its
  // lost task re-enters the bag via re_add_pending against the LIVE
  // cache state.
  sched.on_task_completed(eng.assignments[0].first,
                          eng.assignments[0].second);
  std::vector<TaskId> lost{eng.assignments[1].first};
  sched.on_worker_failed(eng.assignments[1].second, lost);
  EXPECT_TRUE(sched.is_pending(lost[0]));
  expect_totals_match(sched, eng, 2, "after fail + re_add");

  // And the re-added task keeps tracking subsequent cache churn.
  for (int i = 0; i < 30; ++i)
    eng.add_file(SiteId(static_cast<SiteId::underlying_type>(rng.index(2))),
                 FileId(static_cast<unsigned>(rng.index(kFiles))));
  expect_totals_match(sched, eng, 2, "after post-re_add churn");

  // Drain the bag: totals of an empty bag are exactly zero.
  for (unsigned w = 0; w < 20 && sched.pending_count() > 0; ++w)
    sched.on_worker_idle(WorkerId(w % 4));
  EXPECT_EQ(sched.pending_count(), 0u);
  auto [ref0, rest0] = sched.totals_of(SiteId(0));
  EXPECT_DOUBLE_EQ(ref0, 0.0);
  EXPECT_DOUBLE_EQ(rest0, 0.0);
}

}  // namespace
}  // namespace wcs::sched
