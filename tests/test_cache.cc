// Unit tests for storage::FileCache: eviction policies, pinning,
// persistent reference counts, listener events.
#include <gtest/gtest.h>

#include <vector>

#include "storage/file_cache.h"

namespace wcs::storage {
namespace {

FileId F(unsigned v) { return FileId(v); }

TEST(FileCache, InsertAndContains) {
  FileCache c(3, EvictionPolicy::kLru);
  EXPECT_FALSE(c.contains(F(1)));
  c.insert(F(1));
  EXPECT_TRUE(c.contains(F(1)));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.capacity(), 3u);
}

TEST(FileCache, DoubleInsertThrows) {
  FileCache c(3, EvictionPolicy::kLru);
  c.insert(F(1));
  EXPECT_THROW(c.insert(F(1)), std::logic_error);
}

TEST(FileCache, CapacityEnforced) {
  FileCache c(2, EvictionPolicy::kLru);
  c.insert(F(1));
  c.insert(F(2));
  c.insert(F(3));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(FileCache, LruEvictsLeastRecentlyUsed) {
  FileCache c(3, EvictionPolicy::kLru);
  c.insert(F(1));
  c.insert(F(2));
  c.insert(F(3));
  c.record_access(F(1));  // 1 becomes most recent; 2 is now LRU
  c.insert(F(4));
  EXPECT_TRUE(c.contains(F(1)));
  EXPECT_FALSE(c.contains(F(2)));
  EXPECT_TRUE(c.contains(F(3)));
  EXPECT_TRUE(c.contains(F(4)));
}

TEST(FileCache, FifoIgnoresAccessRecency) {
  FileCache c(3, EvictionPolicy::kFifo);
  c.insert(F(1));
  c.insert(F(2));
  c.insert(F(3));
  c.record_access(F(1));  // FIFO does not move 1
  c.insert(F(4));
  EXPECT_FALSE(c.contains(F(1)));
  EXPECT_TRUE(c.contains(F(2)));
}

TEST(FileCache, MinRefEvictsLowestRefCount) {
  FileCache c(3, EvictionPolicy::kMinRef);
  c.insert(F(1));
  c.insert(F(2));
  c.insert(F(3));
  c.record_access(F(1));
  c.record_access(F(1));
  c.record_access(F(3));
  c.insert(F(4));  // F(2) has 0 refs -> evicted
  EXPECT_FALSE(c.contains(F(2)));
  EXPECT_TRUE(c.contains(F(1)));
  EXPECT_TRUE(c.contains(F(3)));
}

TEST(FileCache, MinRefTieBreaksByLowestId) {
  FileCache c(2, EvictionPolicy::kMinRef);
  c.insert(F(5));
  c.insert(F(2));
  c.insert(F(9));  // 5 and 2 both 0 refs; evict lowest id = 2
  EXPECT_TRUE(c.contains(F(5)));
  EXPECT_FALSE(c.contains(F(2)));
}

TEST(FileCache, PinnedFilesSurviveEviction) {
  FileCache c(2, EvictionPolicy::kLru);
  c.insert(F(1));
  c.pin(F(1));
  c.insert(F(2));
  c.insert(F(3));  // must evict 2, not pinned 1
  EXPECT_TRUE(c.contains(F(1)));
  EXPECT_FALSE(c.contains(F(2)));
  EXPECT_TRUE(c.contains(F(3)));
}

TEST(FileCache, PinsNest) {
  FileCache c(2, EvictionPolicy::kLru);
  c.insert(F(1));
  c.pin(F(1));
  c.pin(F(1));
  c.unpin(F(1));
  EXPECT_TRUE(c.pinned(F(1)));
  c.unpin(F(1));
  EXPECT_FALSE(c.pinned(F(1)));
}

TEST(FileCache, UnpinWithoutPinThrows) {
  FileCache c(2, EvictionPolicy::kLru);
  c.insert(F(1));
  EXPECT_THROW(c.unpin(F(1)), std::logic_error);
}

TEST(FileCache, PinAbsentFileThrows) {
  FileCache c(2, EvictionPolicy::kLru);
  EXPECT_THROW(c.pin(F(1)), std::logic_error);
}

TEST(FileCache, AllPinnedInsertThrows) {
  FileCache c(2, EvictionPolicy::kLru);
  c.insert(F(1));
  c.insert(F(2));
  c.pin(F(1));
  c.pin(F(2));
  EXPECT_THROW(c.insert(F(3)), std::logic_error);
}

TEST(FileCache, AccessAbsentFileThrows) {
  FileCache c(2, EvictionPolicy::kLru);
  EXPECT_THROW(c.record_access(F(1)), std::logic_error);
}

TEST(FileCache, RefCountsPersistAcrossEviction) {
  FileCache c(1, EvictionPolicy::kLru);
  c.insert(F(1));
  c.record_access(F(1));
  c.record_access(F(1));
  c.insert(F(2));  // evicts 1
  EXPECT_FALSE(c.contains(F(1)));
  EXPECT_EQ(c.ref_count(F(1)), 2u);  // survives eviction (Sec. 4.2)
  c.insert(F(1));
  EXPECT_EQ(c.ref_count(F(1)), 2u);
  c.record_access(F(1));
  EXPECT_EQ(c.ref_count(F(1)), 3u);
}

TEST(FileCache, RefCountZeroForUnknownFile) {
  FileCache c(2, EvictionPolicy::kLru);
  EXPECT_EQ(c.ref_count(F(77)), 0u);
}

TEST(FileCache, ContentsSnapshot) {
  FileCache c(3, EvictionPolicy::kLru);
  c.insert(F(4));
  c.insert(F(9));
  auto contents = c.contents();
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, (std::vector<FileId>{F(4), F(9)}));
}

TEST(FileCache, ListenerSeesAllEventsInOrder) {
  FileCache c(2, EvictionPolicy::kLru);
  std::vector<std::pair<CacheEvent, FileId>> events;
  c.set_listener([&](CacheEvent e, FileId f) { events.emplace_back(e, f); });
  c.insert(F(1));
  c.record_access(F(1));
  c.insert(F(2));
  c.insert(F(3));  // evicts 1
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0], (std::pair{CacheEvent::kAdded, F(1)}));
  EXPECT_EQ(events[1], (std::pair{CacheEvent::kAccessed, F(1)}));
  EXPECT_EQ(events[2], (std::pair{CacheEvent::kAdded, F(2)}));
  EXPECT_EQ(events[3], (std::pair{CacheEvent::kEvicted, F(1)}));
  EXPECT_EQ(events[4], (std::pair{CacheEvent::kAdded, F(3)}));
}

TEST(FileCache, ListenerRefCountTimingContract) {
  // The worker-centric incremental index depends on: at kAdded time the
  // count is the pre-existing one; kAccessed fires after the increment;
  // at kEvicted time the count reflects everything accumulated while
  // resident.
  FileCache c(1, EvictionPolicy::kLru);
  std::vector<std::size_t> counts;
  c.set_listener([&](CacheEvent, FileId f) { counts.push_back(c.ref_count(f)); });
  c.insert(F(1));          // kAdded: 0
  c.record_access(F(1));   // kAccessed: 1
  c.insert(F(2));          // kEvicted F1: 1, then kAdded F2: 0
  EXPECT_EQ(counts, (std::vector<std::size_t>{0, 1, 1, 0}));
}

TEST(FileCache, EvictionCounterAccumulates) {
  FileCache c(1, EvictionPolicy::kFifo);
  for (unsigned i = 0; i < 10; ++i) c.insert(F(i));
  EXPECT_EQ(c.evictions(), 9u);
}

TEST(FileCache, ZeroCapacityRejected) {
  EXPECT_THROW(FileCache(0, EvictionPolicy::kLru), std::logic_error);
}

TEST(FileCache, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(to_string(EvictionPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(EvictionPolicy::kMinRef), "minref");
}

class CachePolicyParam : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(CachePolicyParam, NeverExceedsCapacityUnderChurn) {
  FileCache c(16, GetParam());
  for (unsigned i = 0; i < 500; ++i) {
    if (!c.contains(F(i % 40))) c.insert(F(i % 40));
    c.record_access(F(i % 40));
    EXPECT_LE(c.size(), 16u);
  }
}

TEST_P(CachePolicyParam, PinnedNeverEvictedUnderChurn) {
  FileCache c(8, GetParam());
  c.insert(F(1000));
  c.pin(F(1000));
  for (unsigned i = 0; i < 200; ++i)
    if (!c.contains(F(i))) c.insert(F(i));
  EXPECT_TRUE(c.contains(F(1000)));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyParam,
                         ::testing::Values(EvictionPolicy::kLru,
                                           EvictionPolicy::kFifo,
                                           EvictionPolicy::kMinRef));

}  // namespace
}  // namespace wcs::storage
