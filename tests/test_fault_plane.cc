// Fault-plane tests: lost fetching/computing instances are withdrawn
// exactly once (batch cancelled / pins released once), via deterministic
// fail_now()/recover_now() injection.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "grid/grid_simulation.h"
#include "workload/job.h"

namespace wcs::grid {
namespace {

GridConfig churn_config() {
  GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 1;
  c.tiers.jitter = 0.0;
  c.tiers.seed = 1;
  c.capacity_files = 100;
  GridConfig::ChurnParams churn;
  churn.mean_uptime_s = 1e12;  // no random failure within the run
  c.churn = churn;
  c.audit = true;  // a double release would trip cache coherence
  return c;
}

workload::Job one_task_job(Bytes file_size, double mflop) {
  workload::Job job;
  job.set_name("one");
  job.catalog = workload::FileCatalog(1, file_size);
  job.add_task({FileId(0)}, mflop);
  return job;
}

// Re-offers every uncompleted task whenever a worker asks; uses the
// default (no-op) on_worker_failed.
class RetryScheduler : public sched::Scheduler {
 public:
  void on_job_submitted() override {}
  void on_worker_idle(WorkerId worker) override {
    for (const workload::Task& t : engine().job().tasks()) {
      if (!done_.count(t.id.value())) {
        engine().assign_task(t.id, worker);
        return;
      }
    }
  }
  void on_task_completed(TaskId task, WorkerId) override {
    done_.insert(task.value());
  }
  [[nodiscard]] std::string name() const override { return "retry"; }

 private:
  std::set<TaskId::underlying_type> done_;
};

TEST(FaultPlane, LostFetchingInstanceCancelsBatchExactlyOnce) {
  // 25 MB over the 2 Mbit/s uplink: the fetch takes ~100 s, so the
  // worker is mid-fetch at t=5 when it crashes.
  auto job = one_task_job(megabytes(25), 1e-6);
  GridSimulation sim(churn_config(), job,
                     std::make_unique<RetryScheduler>());

  ControlPlane::WorkerPhase phase_at_crash = ControlPlane::WorkerPhase::kIdle;
  std::uint64_t cancelled_at_crash = 0;
  sim.simulator().schedule_in(5.0, [&] {
    phase_at_crash = sim.control_plane().worker_phase(WorkerId(0));
    sim.fault_plane()->fail_now(WorkerId(0));
    cancelled_at_crash = sim.data_server(SiteId(0)).stats().batches_cancelled;
  });
  sim.simulator().schedule_in(10.0,
                              [&] { sim.fault_plane()->recover_now(WorkerId(0)); });
  auto r = sim.run();

  EXPECT_EQ(phase_at_crash, ControlPlane::WorkerPhase::kFetching);
  EXPECT_EQ(cancelled_at_crash, 1u);
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.instances_lost, 1u);
  EXPECT_EQ(r.worker_failures, 1u);
  // Exactly one cancellation over the whole run: the withdrawal was not
  // repeated by recovery or drain.
  EXPECT_EQ(sim.data_server(SiteId(0)).stats().batches_cancelled, 1u);
}

TEST(FaultPlane, LostComputingInstanceReleasedExactlyOnce) {
  // Tiny file (fetch ~0.04 s) + heavy compute: the worker is computing
  // at t=5. The crash must cancel the compute event and release the
  // task's cache pins exactly once — the run is audited, so a double
  // release would trip the cache-coherence checker at the next sweep.
  auto job = one_task_job(megabytes(0.01), 1e9);
  GridSimulation sim(churn_config(), job,
                     std::make_unique<RetryScheduler>());

  ControlPlane::WorkerPhase phase_at_crash = ControlPlane::WorkerPhase::kIdle;
  sim.simulator().schedule_in(5.0, [&] {
    phase_at_crash = sim.control_plane().worker_phase(WorkerId(0));
    sim.fault_plane()->fail_now(WorkerId(0));
  });
  sim.simulator().schedule_in(10.0,
                              [&] { sim.fault_plane()->recover_now(WorkerId(0)); });
  auto r = sim.run();

  EXPECT_EQ(phase_at_crash, ControlPlane::WorkerPhase::kComputing);
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.instances_lost, 1u);
  EXPECT_EQ(r.worker_failures, 1u);
  EXPECT_EQ(r.worker_recoveries, 1u);
  // The batch was fully served before the crash; withdrawal must not
  // invent a data-server cancellation.
  EXPECT_EQ(sim.data_server(SiteId(0)).stats().batches_cancelled, 0u);
}

TEST(FaultPlane, IdleCrashLosesNothing) {
  // Crash after the only task completed: nothing to withdraw.
  auto job = one_task_job(megabytes(0.01), 1e-6);
  GridConfig c = churn_config();
  auto sched = std::make_unique<RetryScheduler>();
  GridSimulation sim(c, job, std::move(sched));

  sim.simulator().schedule_in(5.0, [&] {
    ASSERT_EQ(sim.tasks_completed(), 1u);
    sim.fault_plane()->fail_now(WorkerId(0));
    sim.fault_plane()->recover_now(WorkerId(0));
  });
  auto r = sim.run();
  EXPECT_EQ(r.instances_lost, 0u);
  EXPECT_EQ(r.worker_failures, 1u);
  EXPECT_EQ(r.worker_recoveries, 1u);
}

}  // namespace
}  // namespace wcs::grid
