// Tests for the XSufferage dynamic-information baseline.
#include <gtest/gtest.h>

#include "fake_engine.h"
#include "grid/experiment.h"
#include "sched/xsufferage.h"
#include "workload/coadd.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

TEST(XSufferage, Name) {
  EXPECT_EQ(XSufferageScheduler().name(), "xsufferage");
  SchedulerSpec s;
  s.algorithm = Algorithm::kXSufferage;
  EXPECT_EQ(s.name(), "xsufferage");
  EXPECT_EQ(make_scheduler(s)->name(), "xsufferage");
}

TEST(XSufferage, EstimateAccountsForCachedBytes) {
  auto job = make_job({{0, 1}, {2}}, 3, /*file_size=*/1000000);
  FakeEngine eng(job, 2, 1);
  XSufferageScheduler xs;
  xs.attach(eng);
  xs.on_job_submitted();
  // Site 0 holds file 0: task 0 misses 1 MB there, 2 MB at site 1.
  eng.add_file(SiteId(0), FileId(0));
  double e0 = xs.estimated_completion(TaskId(0), SiteId(0));
  double e1 = xs.estimated_completion(TaskId(0), SiteId(1));
  EXPECT_LT(e0, e1);
  // FakeEngine default bandwidth 1e6 B/s: the gap is exactly 1 s of
  // transfer for the extra missing megabyte.
  EXPECT_NEAR(e1 - e0, 1.0, 1e-9);
}

TEST(XSufferage, AssignsTaskPreferringRequesterSite) {
  auto job = make_job({{0, 1}, {2, 3}}, 4, 1000000);
  FakeEngine eng(job, 2, 1);
  XSufferageScheduler xs;
  xs.attach(eng);
  xs.on_job_submitted();
  // Task 1's files live at site 1 -> its best site is 1; task 0 is
  // indifferent. Worker at site 1 must get task 1.
  eng.add_file(SiteId(1), FileId(2));
  eng.add_file(SiteId(1), FileId(3));
  xs.on_worker_idle(WorkerId(1));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(1));
}

TEST(XSufferage, NeverIdlesAFreeWorker) {
  // Both tasks prefer site 0; a worker at site 1 still gets one (the
  // min-MCT fallback).
  auto job = make_job({{0}, {1}}, 2, 1000000);
  FakeEngine eng(job, 2, 1);
  XSufferageScheduler xs;
  xs.attach(eng);
  xs.on_job_submitted();
  eng.add_file(SiteId(0), FileId(0));
  eng.add_file(SiteId(0), FileId(1));
  xs.on_worker_idle(WorkerId(1));
  EXPECT_EQ(eng.assignments.size(), 1u);
}

TEST(XSufferage, EveryTaskAssignedOnce) {
  auto job = make_job({{0}, {1}, {2}}, 3);
  FakeEngine eng(job, 2, 2);
  XSufferageScheduler xs;
  xs.attach(eng);
  xs.on_job_submitted();
  for (unsigned w = 0; w < 4; ++w) xs.on_worker_idle(WorkerId(w));
  EXPECT_EQ(eng.assignments.size(), 3u);
  EXPECT_EQ(xs.pending_count(), 0u);
}

TEST(XSufferage, EndToEndCompletesCoadd) {
  workload::CoaddParams cp;
  cp.num_tasks = 100;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 400;
  SchedulerSpec spec;
  spec.algorithm = Algorithm::kXSufferage;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.tasks_completed, 100u);
  EXPECT_EQ(r.assignments, 100u);
}

TEST(XSufferage, SurvivesChurn) {
  workload::CoaddParams cp;
  cp.num_tasks = 60;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 400;
  grid::GridConfig::ChurnParams churn;
  churn.mean_uptime_s = 20000;
  churn.mean_downtime_s = 5000;
  c.churn = churn;
  SchedulerSpec spec;
  spec.algorithm = Algorithm::kXSufferage;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.tasks_completed, 60u);
}

TEST(XSufferage, OmniscientEstimatesMatchRestClosely) {
  // With PERFECT estimates, XSufferage's MCT is dominated by
  // missing-bytes/bandwidth, i.e. it degenerates to a bytes-flavoured
  // rest metric — transfers within ~10 % of rest's.
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 4;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 800;
  SchedulerSpec xs;
  xs.algorithm = Algorithm::kXSufferage;
  SchedulerSpec rest;
  rest.algorithm = Algorithm::kRest;
  auto r_xs = grid::run_once(c, job, xs, 1);
  auto r_rest = grid::run_once(c, job, rest, 1);
  double ratio = static_cast<double>(r_xs.total_file_transfers()) /
                 static_cast<double>(r_rest.total_file_transfers());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(XSufferage, BadEstimatesHurtItButNotRest) {
  // The paper's Sec. 2.4 point: dynamic estimates are hard to obtain.
  // Inject 5x estimate error: XSufferage degrades; rest (which never
  // reads estimates) is bit-identical.
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 4;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 800;
  SchedulerSpec xs;
  xs.algorithm = Algorithm::kXSufferage;
  SchedulerSpec rest;
  rest.algorithm = Algorithm::kRest;

  auto xs_exact = grid::run_once(c, job, xs, 1);
  auto rest_exact = grid::run_once(c, job, rest, 1);
  c.estimate_error = 5.0;
  auto xs_noisy = grid::run_once(c, job, xs, 1);
  auto rest_noisy = grid::run_once(c, job, rest, 1);

  EXPECT_DOUBLE_EQ(rest_exact.makespan_s, rest_noisy.makespan_s);
  EXPECT_GT(xs_noisy.makespan_s, xs_exact.makespan_s);
  EXPECT_GT(xs_noisy.makespan_s, rest_noisy.makespan_s);
}

}  // namespace
}  // namespace wcs::sched
