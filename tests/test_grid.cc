// Integration tests: full simulations on small workloads, timing
// hand-checks, determinism, and engine bookkeeping.
#include <gtest/gtest.h>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"
#include "workload/generators.h"

namespace wcs::grid {
namespace {

// Zero-jitter platform so timing is exactly computable.
GridConfig exact_config(int sites, int workers_per_site,
                        std::size_t capacity) {
  GridConfig c;
  c.tiers.num_sites = sites;
  c.tiers.workers_per_site = workers_per_site;
  c.tiers.jitter = 0.0;
  c.tiers.seed = 1;
  c.capacity_files = capacity;
  return c;
}

workload::Job tiny_job(std::size_t tasks, std::size_t files_per_task,
                       Bytes file_size = megabytes(25),
                       double mflop = 1e-6) {
  workload::Job job;
  job.set_name("tiny");
  job.catalog =
      workload::FileCatalog(tasks * files_per_task, file_size);
  std::vector<FileId> files;
  for (std::size_t i = 0; i < tasks; ++i) {
    files.clear();
    for (std::size_t f = 0; f < files_per_task; ++f)
      files.push_back(FileId(
          static_cast<FileId::underlying_type>(i * files_per_task + f)));
    job.add_task(files, mflop);  // default mflop: network-only timing
  }
  return job;
}

sched::SchedulerSpec spec_of(sched::Algorithm a, int n = 1) {
  sched::SchedulerSpec s;
  s.algorithm = a;
  s.choose_n = n;
  return s;
}

TEST(GridTiming, SingleWorkerSequentialTransfers) {
  // 1 site, 1 worker, 2 disjoint 1-file tasks of 25 MB over a 2 Mbit/s
  // uplink (jitter 0): each transfer is exactly 100 s; control/flow
  // latencies total ~0.28 s.
  auto job = tiny_job(2, 1);
  GridConfig c = exact_config(1, 1, 100);
  GridSimulation sim(c, job, sched::make_scheduler(
                                 spec_of(sched::Algorithm::kWorkqueue)));
  auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_NEAR(r.makespan_s, 200.0, 1.0);
  EXPECT_GT(r.makespan_s, 200.0);  // latencies are nonzero
  EXPECT_EQ(r.total_file_transfers(), 2u);
  EXPECT_NEAR(r.total_bytes_transferred(), 2 * 25e6, 1);
}

TEST(GridTiming, CachedSecondTaskSkipsTransfer) {
  // Two tasks over the SAME file: second is a pure cache hit.
  workload::Job job = tiny_job(1, 1);
  job.add_task({FileId(0)}, 1e-6);  // same file as task 0
  GridConfig c = exact_config(1, 1, 100);
  GridSimulation sim(c, job, sched::make_scheduler(
                                 spec_of(sched::Algorithm::kWorkqueue)));
  auto r = sim.run();
  EXPECT_EQ(r.total_file_transfers(), 1u);
  EXPECT_EQ(r.total_cache_hits(), 1u);
  EXPECT_NEAR(r.makespan_s, 100.0, 1.0);
}

TEST(GridTiming, TwoSitesTransferInParallel) {
  auto job = tiny_job(2, 1);
  GridConfig c = exact_config(2, 1, 100);
  GridSimulation sim(
      c, job, sched::make_scheduler(spec_of(sched::Algorithm::kRest)));
  auto r = sim.run();
  // Each site pulls one file over its own uplink concurrently.
  EXPECT_NEAR(r.makespan_s, 100.0, 1.0);
}

TEST(Grid, ComputeTimeAddsToMakespan) {
  // 1e9 MFLOP dominates on any top500/100 worker.
  auto job = tiny_job(1, 1, megabytes(25), 1e9);
  GridConfig c = exact_config(1, 1, 100);
  GridSimulation sim(c, job, sched::make_scheduler(
                                 spec_of(sched::Algorithm::kWorkqueue)));
  auto r = sim.run();
  EXPECT_GT(r.makespan_s, 100.0 + 300.0);  // transfer + real compute
}

TEST(Grid, InvalidCapacityRejected) {
  auto job = tiny_job(1, 5);
  GridConfig c = exact_config(1, 1, /*capacity=*/3);  // < 5 files needed
  EXPECT_THROW(GridSimulation(c, job,
                              sched::make_scheduler(
                                  spec_of(sched::Algorithm::kWorkqueue))),
               std::logic_error);
}

TEST(Grid, PinnedWorkingSetValidationCountsWorkers) {
  auto job = tiny_job(4, 5);
  GridConfig c = exact_config(1, 3, /*capacity=*/14);  // 3 workers x 5 = 15
  EXPECT_THROW(GridSimulation(c, job,
                              sched::make_scheduler(
                                  spec_of(sched::Algorithm::kWorkqueue))),
               std::logic_error);
  c.capacity_files = 15;
  EXPECT_NO_THROW(GridSimulation(c, job,
                                 sched::make_scheduler(spec_of(
                                     sched::Algorithm::kWorkqueue))));
}

TEST(Grid, RunIsSingleShot) {
  auto job = tiny_job(1, 1);
  GridConfig c = exact_config(1, 1, 10);
  GridSimulation sim(c, job, sched::make_scheduler(
                                 spec_of(sched::Algorithm::kWorkqueue)));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Grid, DeterministicAcrossRuns) {
  workload::CoaddParams cp;
  cp.num_tasks = 150;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(3, 2, 400);
  c.tiers.jitter = 0.25;
  for (sched::Algorithm a :
       {sched::Algorithm::kRest, sched::Algorithm::kStorageAffinity}) {
    auto r1 = run_once(c, job, spec_of(a), /*topology_seed=*/3);
    auto r2 = run_once(c, job, spec_of(a), /*topology_seed=*/3);
    EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
    EXPECT_EQ(r1.total_file_transfers(), r2.total_file_transfers());
    EXPECT_EQ(r1.events_executed, r2.events_executed);
  }
}

TEST(Grid, RandomizedAlgorithmsAreSeedDeterministic) {
  workload::CoaddParams cp;
  cp.num_tasks = 100;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 1, 400);
  sched::SchedulerSpec s = spec_of(sched::Algorithm::kRest, 2);
  s.seed = 77;
  auto r1 = run_once(c, job, s, 1);
  auto r2 = run_once(c, job, s, 1);
  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
}

TEST(Grid, TopologySeedChangesOutcome) {
  workload::CoaddParams cp;
  cp.num_tasks = 100;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 1, 400);
  c.tiers.jitter = 0.25;
  auto r1 = run_once(c, job, spec_of(sched::Algorithm::kRest), 1);
  auto r2 = run_once(c, job, spec_of(sched::Algorithm::kRest), 2);
  EXPECT_NE(r1.makespan_s, r2.makespan_s);
}

TEST(Grid, NoEvictionWhenCapacityCoversCatalog) {
  workload::CoaddParams cp;
  cp.num_tasks = 80;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 1, job.catalog.num_files());
  auto r = run_once(c, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_EQ(r.total_evictions(), 0u);
  // Without eviction, each site transfers each of its distinct files
  // exactly once: transfers + hits == total file requests.
  std::size_t total_requests = 0;
  for (const workload::Task& t : job.tasks()) total_requests += t.files.size();
  EXPECT_EQ(r.total_file_transfers() + r.total_cache_hits(), total_requests);
}

TEST(Grid, SmallCapacityCausesEvictionsAndRefetches) {
  workload::CoaddParams cp;
  cp.num_tasks = 80;
  auto job = workload::generate_coadd(cp);
  GridConfig big = exact_config(1, 1, job.catalog.num_files());
  GridConfig small = exact_config(1, 1, 110);  // just above max task size
  auto rb = run_once(big, job, spec_of(sched::Algorithm::kRest), 1);
  auto rs = run_once(small, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_GT(rs.total_evictions(), 0u);
  EXPECT_GT(rs.total_file_transfers(), rb.total_file_transfers());
  EXPECT_GE(rs.makespan_s, rb.makespan_s);
}

TEST(Grid, StorageAffinityReplicatesAndCancels) {
  workload::CoaddParams cp;
  cp.num_tasks = 120;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(3, 2, 400);
  auto r = run_once(c, job, spec_of(sched::Algorithm::kStorageAffinity), 1);
  EXPECT_EQ(r.tasks_completed, 120u);
  // With multiple workers per site the tail produces idle workers, so
  // replication must have kicked in, and every completed task's sibling
  // replicas were cancelled.
  EXPECT_GT(r.replicas_started, 0u);
  EXPECT_EQ(r.assignments, 120u + r.replicas_started);
  EXPECT_GE(r.replicas_started, r.replicas_cancelled);
}

TEST(Grid, WorkerCentricAssignsEachTaskOnce) {
  workload::CoaddParams cp;
  cp.num_tasks = 100;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 2, 400);
  for (auto a : {sched::Algorithm::kOverlap, sched::Algorithm::kRest,
                 sched::Algorithm::kCombined}) {
    auto r = run_once(c, job, spec_of(a), 1);
    EXPECT_EQ(r.assignments, 100u);
    EXPECT_EQ(r.replicas_started, 0u);
    EXPECT_EQ(r.tasks_completed, 100u);
  }
}

TEST(Grid, MakespanIsLastCompletion) {
  auto job = tiny_job(3, 1);
  GridConfig c = exact_config(1, 1, 10);
  GridSimulation sim(c, job, sched::make_scheduler(
                                 spec_of(sched::Algorithm::kWorkqueue)));
  auto r = sim.run();
  EXPECT_NEAR(r.makespan_s, 300.0, 2.0);
  EXPECT_EQ(r.sites.size(), 1u);
  EXPECT_EQ(r.sites[0].batches_served, 3u);
}

// --- Experiment runner ----------------------------------------------------

TEST(Experiment, AveragedOverSeeds) {
  workload::CoaddParams cp;
  cp.num_tasks = 60;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 1, 300);
  c.tiers.jitter = 0.25;
  std::vector<std::uint64_t> seeds{1, 2, 3};
  auto avg = run_averaged(c, job, spec_of(sched::Algorithm::kRest), seeds);
  EXPECT_EQ(avg.runs, 3u);
  EXPECT_GT(avg.makespan_minutes, 0.0);
  EXPECT_LE(avg.makespan_minutes_min, avg.makespan_minutes);
  EXPECT_GE(avg.makespan_minutes_max, avg.makespan_minutes);
  EXPECT_EQ(avg.scheduler, "rest");
}

TEST(Experiment, MatrixRunsAllSpecs) {
  workload::CoaddParams cp;
  cp.num_tasks = 40;
  auto job = workload::generate_coadd(cp);
  GridConfig c = exact_config(2, 1, 300);
  std::vector<sched::SchedulerSpec> specs = {
      spec_of(sched::Algorithm::kWorkqueue),
      spec_of(sched::Algorithm::kRest)};
  std::vector<std::uint64_t> seeds{1};
  int progress_calls = 0;
  auto rows = run_matrix(c, job, specs, seeds,
                         [&](const std::string&) { ++progress_calls; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].scheduler, "workqueue");
  EXPECT_EQ(rows[1].scheduler, "rest");
  EXPECT_EQ(progress_calls, 2);
}

TEST(Experiment, DefaultSeedsArePaper5) {
  EXPECT_EQ(default_topology_seeds().size(), 5u);
}

TEST(Experiment, PaperAlgorithmListMatchesSection53) {
  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name(), "storage-affinity");
  EXPECT_EQ(specs[1].name(), "overlap");
  EXPECT_EQ(specs[2].name(), "rest");
  EXPECT_EQ(specs[3].name(), "combined");
  EXPECT_EQ(specs[4].name(), "rest.2");
  EXPECT_EQ(specs[5].name(), "combined.2");
}

}  // namespace
}  // namespace wcs::grid
