// Unit tests for metrics::RunResult helpers and cross-run averaging.
#include <gtest/gtest.h>

#include "metrics/results.h"

namespace wcs::metrics {
namespace {

RunResult sample_run(double makespan_s, std::uint64_t transfers_per_site,
                     std::size_t sites = 2) {
  RunResult r;
  r.scheduler = "rest";
  r.makespan_s = makespan_s;
  r.tasks_completed = 10;
  for (std::size_t s = 0; s < sites; ++s) {
    SiteResult site;
    site.file_transfers = transfers_per_site;
    site.bytes_transferred = static_cast<double>(transfers_per_site) * 25e6;
    site.waiting_s = 3600;
    site.transfer_s = 7200;
    site.batches_served = 5;
    site.cache_hits = 100;
    site.evictions = 7;
    r.sites.push_back(site);
  }
  return r;
}

TEST(RunResult, MakespanConversion) {
  RunResult r = sample_run(1200, 10);
  EXPECT_DOUBLE_EQ(r.makespan_minutes(), 20.0);
}

TEST(RunResult, TransferAggregation) {
  RunResult r = sample_run(60, 100, 4);
  EXPECT_EQ(r.total_file_transfers(), 400u);
  EXPECT_DOUBLE_EQ(r.transfers_per_site(), 100.0);
  EXPECT_DOUBLE_EQ(r.total_bytes_transferred(), 400 * 25e6);
}

TEST(RunResult, WaitingAndTransferHours) {
  RunResult r = sample_run(60, 10, 3);
  EXPECT_DOUBLE_EQ(r.total_waiting_s(), 3 * 3600.0);
  EXPECT_DOUBLE_EQ(r.waiting_hours_per_site(), 1.0);
  EXPECT_DOUBLE_EQ(r.transfer_hours_per_site(), 2.0);
}

TEST(RunResult, HitAndEvictionTotals) {
  RunResult r = sample_run(60, 10, 3);
  EXPECT_EQ(r.total_cache_hits(), 300u);
  EXPECT_EQ(r.total_evictions(), 21u);
}

TEST(Average, MeansAndExtremes) {
  std::vector<RunResult> runs{sample_run(600, 10), sample_run(1200, 20),
                              sample_run(1800, 30)};
  AveragedResult avg = average(runs);
  EXPECT_EQ(avg.runs, 3u);
  EXPECT_DOUBLE_EQ(avg.makespan_minutes, 20.0);
  EXPECT_DOUBLE_EQ(avg.makespan_minutes_min, 10.0);
  EXPECT_DOUBLE_EQ(avg.makespan_minutes_max, 30.0);
  EXPECT_DOUBLE_EQ(avg.transfers_per_site, 20.0);
  EXPECT_DOUBLE_EQ(avg.total_file_transfers, 40.0);
  EXPECT_EQ(avg.scheduler, "rest");
}

TEST(Average, SingleRunIsIdentity) {
  std::vector<RunResult> runs{sample_run(600, 10)};
  AveragedResult avg = average(runs);
  EXPECT_DOUBLE_EQ(avg.makespan_minutes, 10.0);
  EXPECT_DOUBLE_EQ(avg.makespan_minutes_min, avg.makespan_minutes_max);
}

TEST(Average, EmptyThrows) {
  std::vector<RunResult> runs;
  EXPECT_THROW((void)average(runs), std::logic_error);
}

TEST(Average, MixedSchedulersRejected) {
  std::vector<RunResult> runs{sample_run(600, 10), sample_run(1200, 20)};
  runs[1].scheduler = "overlap";
  EXPECT_THROW((void)average(runs), std::logic_error);
}

TEST(RunResult, EmptySitesThrowOnPerSiteMetrics) {
  RunResult r;
  EXPECT_THROW((void)r.transfers_per_site(), std::logic_error);
  EXPECT_THROW((void)r.waiting_hours_per_site(), std::logic_error);
}

}  // namespace
}  // namespace wcs::metrics
