// Tests for the scheduler spec/factory layer: naming parity, dispatch,
// parameter plumbing.
#include <gtest/gtest.h>

#include "fake_engine.h"
#include "sched/factory.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

TEST(SpecName, AllAlgorithms) {
  SchedulerSpec s;
  s.algorithm = Algorithm::kWorkqueue;
  EXPECT_EQ(s.name(), "workqueue");
  s.algorithm = Algorithm::kStorageAffinity;
  EXPECT_EQ(s.name(), "storage-affinity");
  s.algorithm = Algorithm::kOverlap;
  EXPECT_EQ(s.name(), "overlap");
  s.algorithm = Algorithm::kRest;
  EXPECT_EQ(s.name(), "rest");
  s.algorithm = Algorithm::kCombined;
  EXPECT_EQ(s.name(), "combined");
}

TEST(SpecName, ModifiersCompose) {
  SchedulerSpec s;
  s.algorithm = Algorithm::kCombined;
  s.choose_n = 3;
  s.combined_formula = CombinedFormula::kVerbatim;
  s.task_replication = true;
  EXPECT_EQ(s.name(), "combined~verbatim.3+repl");
}

TEST(SpecName, MatchesConstructedSchedulerName) {
  for (const SchedulerSpec& s : SchedulerSpec::paper_algorithms())
    EXPECT_EQ(s.name(), make_scheduler(s)->name());
  SchedulerSpec wq;
  wq.algorithm = Algorithm::kWorkqueue;
  EXPECT_EQ(wq.name(), make_scheduler(wq)->name());
}

TEST(Factory, DispatchesToCorrectTypes) {
  SchedulerSpec s;
  s.algorithm = Algorithm::kWorkqueue;
  EXPECT_NE(dynamic_cast<WorkqueueScheduler*>(make_scheduler(s).get()),
            nullptr);
  s.algorithm = Algorithm::kStorageAffinity;
  EXPECT_NE(dynamic_cast<StorageAffinityScheduler*>(make_scheduler(s).get()),
            nullptr);
  for (Algorithm a :
       {Algorithm::kOverlap, Algorithm::kRest, Algorithm::kCombined}) {
    s.algorithm = a;
    EXPECT_NE(dynamic_cast<WorkerCentricScheduler*>(make_scheduler(s).get()),
              nullptr);
  }
}

TEST(Factory, SeedReachesRandomizedChooser) {
  // Two different seeds must be able to produce different first picks on
  // an all-tie workload (uniform sampling among best-2).
  auto job = make_job({{0}, {1}}, 2);
  std::set<unsigned> picks;
  for (std::uint64_t seed = 0; seed < 16 && picks.size() < 2; ++seed) {
    SchedulerSpec s;
    s.algorithm = Algorithm::kOverlap;
    s.choose_n = 2;
    s.seed = seed;
    auto sched = make_scheduler(s);
    FakeEngine eng(job, 1, 1);
    sched->attach(eng);
    sched->on_job_submitted();
    sched->on_worker_idle(WorkerId(0));
    picks.insert(eng.assignments[0].first.value());
  }
  EXPECT_EQ(picks.size(), 2u);
}

TEST(Factory, MaxReplicasReachesBothFamilies) {
  auto job = make_job({{0}}, 1);
  // Worker-centric replicating variant honours max_replicas.
  SchedulerSpec s;
  s.algorithm = Algorithm::kRest;
  s.task_replication = true;
  s.max_replicas = 1;  // replicas disabled in effect
  auto sched = make_scheduler(s);
  FakeEngine eng(job, 2, 1);
  sched->attach(eng);
  sched->on_job_submitted();
  sched->on_worker_idle(WorkerId(0));
  sched->on_worker_idle(WorkerId(1));  // would replicate, but cap is 1
  EXPECT_EQ(eng.assignments.size(), 1u);
}

TEST(Factory, PaperAlgorithmsAreSixInPaperOrder) {
  auto specs = SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].algorithm, Algorithm::kStorageAffinity);
  EXPECT_EQ(specs[1].algorithm, Algorithm::kOverlap);
  EXPECT_EQ(specs[4].choose_n, 2);
  EXPECT_EQ(specs[5].algorithm, Algorithm::kCombined);
  EXPECT_EQ(specs[5].choose_n, 2);
}

}  // namespace
}  // namespace wcs::sched
