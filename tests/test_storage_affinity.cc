// Unit tests for the task-centric storage-affinity baseline: initial
// distribution, replication, cancellation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fake_engine.h"
#include "sched/storage_affinity.h"
#include "sched/workqueue.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

StorageAffinityScheduler make_sa(int max_replicas = 2) {
  StorageAffinityParams p;
  p.max_replicas = max_replicas;
  return StorageAffinityScheduler(p);
}

TEST(StorageAffinity, Name) { EXPECT_EQ(make_sa().name(), "storage-affinity"); }

TEST(StorageAffinity, RejectsZeroReplicas) {
  StorageAffinityParams p;
  p.max_replicas = 0;
  EXPECT_THROW(StorageAffinityScheduler{p}, std::logic_error);
}

TEST(StorageAffinity, DistributesEveryTaskUpFront) {
  auto job = make_job({{0}, {1}, {2}, {3}, {4}}, 5);
  FakeEngine eng(job, 2, 2);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  EXPECT_EQ(eng.assignments.size(), 5u);  // task-centric: push everything
  std::set<unsigned> tasks;
  for (auto& [t, w] : eng.assignments) tasks.insert(t.value());
  EXPECT_EQ(tasks.size(), 5u);
}

TEST(StorageAffinity, ColdStartBalancesByLoad) {
  // With empty caches every overlap is 0, so ties spread tasks across
  // sites/workers by load.
  auto job = make_job({{0}, {1}, {2}, {3}}, 4);
  FakeEngine eng(job, 2, 2);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  std::map<unsigned, int> per_worker;
  for (auto& [t, w] : eng.assignments) ++per_worker[w.value()];
  EXPECT_EQ(per_worker.size(), 4u);
  for (auto& [w, n] : per_worker) EXPECT_EQ(n, 1);
}

TEST(StorageAffinity, OverlappingTasksClusterOnOneSite) {
  // Tasks 0-3 share files {0,1,2}; task 4 is disjoint. The sharing tasks
  // land on the same site (the projected-contents greedy) until the
  // load cap (ceil(5/3 * 1.25) = 3 per worker) forces task 3 elsewhere.
  auto job = make_job({{0, 1, 2}, {0, 1, 2}, {0, 1, 2, 3}, {1, 2, 4},
                       {10, 11, 12}},
                      13);
  FakeEngine eng(job, 3, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  std::map<unsigned, unsigned> task_site;
  for (auto& [t, w] : eng.assignments)
    task_site[t.value()] = eng.site_of(w).value();
  EXPECT_EQ(task_site[1], task_site[0]);
  EXPECT_EQ(task_site[2], task_site[0]);
  EXPECT_NE(task_site[3], task_site[0]);  // capped: pushed off the hot site
  EXPECT_NE(task_site[4], task_site[0]);
}

TEST(StorageAffinity, PopularFilesUnbalanceUpToTheLoadCap) {
  // Many tasks share one popular file set; the site that accumulates it
  // attracts them (the Sec. 3.1 unbalance problem) until the imbalance
  // cap (ceil(8/4 * 1.25) = 3) stops the pile-up.
  std::vector<std::vector<unsigned>> sets;
  for (int i = 0; i < 8; ++i) sets.push_back({0, 1, 2});
  auto job = make_job(sets, 3);
  FakeEngine eng(job, 4, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  std::map<unsigned, int> per_site;
  for (auto& [t, w] : eng.assignments) ++per_site[eng.site_of(w).value()];
  int max_load = 0;
  for (auto& [s, n] : per_site) max_load = std::max(max_load, n);
  EXPECT_EQ(max_load, 3);  // hot site saturates its cap (fair share is 2)
}

TEST(StorageAffinity, HigherImbalanceFactorAllowsMorePileUp) {
  std::vector<std::vector<unsigned>> sets;
  for (int i = 0; i < 8; ++i) sets.push_back({0, 1, 2});
  auto job = make_job(sets, 3);
  FakeEngine eng(job, 4, 1);
  StorageAffinityParams p;
  p.imbalance_factor = 4.0;  // cap = 8: effectively uncapped
  StorageAffinityScheduler sa(p);
  sa.attach(eng);
  sa.on_job_submitted();
  std::map<unsigned, int> per_site;
  for (auto& [t, w] : eng.assignments) ++per_site[eng.site_of(w).value()];
  int max_load = 0;
  for (auto& [s, n] : per_site) max_load = std::max(max_load, n);
  EXPECT_EQ(max_load, 8);  // the full Sec. 3.1 pathology
}

TEST(StorageAffinity, PrematureDecisions_ProjectionRespectsCapacity) {
  // Site capacity 2: the projection must evict, so a task whose files
  // were projected long ago no longer attracts followers.
  auto job = make_job({{0, 1}, {2, 3}, {4, 5}, {0, 1}}, 6);
  FakeEngine eng(job, 2, 1, /*capacity=*/2);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  // Task 3 shares files with task 0, but by then the projection of task
  // 0's site has churned past {0,1}; overlap is 0 -> load tie-break.
  std::map<unsigned, unsigned> task_site;
  std::map<unsigned, int> per_site;
  for (auto& [t, w] : eng.assignments) {
    task_site[t.value()] = eng.site_of(w).value();
    ++per_site[eng.site_of(w).value()];
  }
  EXPECT_EQ(per_site[0], 2);
  EXPECT_EQ(per_site[1], 2);
}

TEST(StorageAffinity, ReplicatesToIdleWorkerByAffinity) {
  auto job = make_job({{0, 1}, {2, 3}}, 4);
  FakeEngine eng(job, 2, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  eng.assignments.clear();
  // Site 1's cache holds task 0's files -> idle worker 1 replicates t0.
  eng.add_file(SiteId(1), FileId(0));
  eng.add_file(SiteId(1), FileId(1));
  sa.on_worker_idle(WorkerId(1));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
  EXPECT_EQ(eng.assignments[0].second, WorkerId(1));
  EXPECT_EQ(sa.replications(), 1u);
  EXPECT_EQ(sa.placements(TaskId(0)).size(), 2u);
}

TEST(StorageAffinity, MaxReplicasBoundsInstances) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 3, 1);
  auto sa = make_sa(/*max_replicas=*/2);
  sa.attach(eng);
  sa.on_job_submitted();
  sa.on_worker_idle(WorkerId(1));  // replica 2 of 2
  sa.on_worker_idle(WorkerId(2));  // would be replica 3: refused
  EXPECT_EQ(sa.placements(TaskId(0)).size(), 2u);
  EXPECT_EQ(eng.assignments.size(), 2u);
}

TEST(StorageAffinity, NeverPlacesTwoInstancesOnOneWorker) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 1);
  auto sa = make_sa(/*max_replicas=*/3);
  sa.attach(eng);
  sa.on_job_submitted();
  sa.on_worker_idle(WorkerId(0));  // only candidate is already on worker 0
  EXPECT_EQ(eng.assignments.size(), 1u);
}

TEST(StorageAffinity, CompletionCancelsSiblingReplicas) {
  auto job = make_job({{0}, {1}}, 2);
  FakeEngine eng(job, 2, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  sa.on_worker_idle(WorkerId(1));  // replicate something
  ASSERT_EQ(sa.placements(TaskId(0)).size() + sa.placements(TaskId(1)).size(),
            3u);
  TaskId replicated = eng.assignments.back().first;
  WorkerId original = eng.assignments[replicated.value()].second;
  sa.on_task_completed(replicated, original);
  ASSERT_EQ(eng.cancellations.size(), 1u);
  EXPECT_EQ(eng.cancellations[0].first, replicated);
  EXPECT_EQ(eng.cancellations[0].second, WorkerId(1));
  EXPECT_TRUE(sa.completed(replicated));
}

TEST(StorageAffinity, CompletedTasksAreNotReplicated) {
  auto job = make_job({{0}, {1}}, 2);
  FakeEngine eng(job, 2, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  sa.on_task_completed(TaskId(0), eng.assignments[0].second);
  sa.on_task_completed(TaskId(1), eng.assignments[1].second);
  eng.assignments.clear();
  sa.on_worker_idle(WorkerId(0));
  EXPECT_TRUE(eng.assignments.empty());  // nothing replicatable
}

TEST(StorageAffinity, ReplicationPrefersHighestByteOverlap) {
  auto job = make_job({{0, 1, 2}, {3}}, 4);
  FakeEngine eng(job, 2, 1);
  auto sa = make_sa();
  sa.attach(eng);
  sa.on_job_submitted();
  eng.assignments.clear();
  eng.add_file(SiteId(1), FileId(0));
  eng.add_file(SiteId(1), FileId(1));
  eng.add_file(SiteId(1), FileId(3));
  // t0 overlap = 2 files > t1 overlap = 1 file, unless t0 is already on
  // worker 1 (not the case: 2 sites, 1 worker each; t0 went to worker 0).
  sa.on_worker_idle(WorkerId(1));
  ASSERT_FALSE(eng.assignments.empty());
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
}

// --- Workqueue baseline ---------------------------------------------------

TEST(Workqueue, FifoOrder) {
  auto job = make_job({{0}, {1}, {2}}, 3);
  FakeEngine eng(job, 1, 1);
  WorkqueueScheduler wq;
  wq.attach(eng);
  wq.on_job_submitted();
  EXPECT_EQ(wq.name(), "workqueue");
  EXPECT_EQ(wq.pending_count(), 3u);
  wq.on_worker_idle(WorkerId(0));
  wq.on_worker_idle(WorkerId(0));
  wq.on_worker_idle(WorkerId(0));
  wq.on_worker_idle(WorkerId(0));  // empty: no-op
  ASSERT_EQ(eng.assignments.size(), 3u);
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_EQ(eng.assignments[i].first, TaskId(i));
}

}  // namespace
}  // namespace wcs::sched
