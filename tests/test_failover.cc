// Scheduler-level failure-handling unit tests (driven through the fake
// engine, no simulation): re-homing of orphaned tasks, starving-worker
// feeds, index consistency after re-adds.
#include <gtest/gtest.h>

#include "fake_engine.h"
#include "sched/storage_affinity.h"
#include "sched/worker_centric.h"
#include "sched/workqueue.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

WorkerCentricScheduler make_wc(Metric m = Metric::kRest) {
  WorkerCentricParams p;
  p.metric = m;
  return WorkerCentricScheduler(p);
}

TEST(WcFailover, LostTaskReturnsToPending) {
  auto job = make_job({{0}, {1}, {2}}, 3);
  FakeEngine eng(job, 1, 2);
  auto wc = make_wc();
  wc.attach(eng);
  wc.on_job_submitted();
  wc.on_worker_idle(WorkerId(0));
  TaskId assigned = eng.assignments[0].first;
  EXPECT_EQ(wc.pending_count(), 2u);

  eng.dead_workers.insert(WorkerId(0));
  wc.on_worker_failed(WorkerId(0), {assigned});
  EXPECT_EQ(wc.pending_count(), 3u);
  EXPECT_TRUE(wc.is_pending(assigned));
}

TEST(WcFailover, ReAddedTaskHasFreshIndexCounters) {
  auto job = make_job({{0, 1}, {2}}, 3);
  FakeEngine eng(job, 1, 2);
  auto wc = make_wc(Metric::kOverlap);
  wc.attach(eng);
  wc.on_job_submitted();
  wc.on_worker_idle(WorkerId(0));  // cold: assigns t0 (lowest id)
  ASSERT_EQ(eng.assignments[0].first, TaskId(0));

  // Cache mutates WHILE the task is off the index.
  eng.add_file(SiteId(0), FileId(0));
  eng.add_file(SiteId(0), FileId(1));

  eng.dead_workers.insert(WorkerId(0));
  wc.on_worker_failed(WorkerId(0), {TaskId(0)});
  // Rebuilt against live cache: overlap must be 2, and match the naive
  // recomputation.
  EXPECT_EQ(wc.overlap_cardinality(SiteId(0), TaskId(0)), 2u);
  EXPECT_DOUBLE_EQ(wc.weight(SiteId(0), TaskId(0)),
                   wc.naive_weight(SiteId(0), TaskId(0)));
  // And future cache events keep tracking it.
  eng.cache(SiteId(0)).record_access(FileId(0));
  EXPECT_DOUBLE_EQ(wc.weight(SiteId(0), TaskId(0)),
                   wc.naive_weight(SiteId(0), TaskId(0)));
}

TEST(WcFailover, StarvingWorkerIsFedAfterRefill) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 2);
  auto wc = make_wc();
  wc.attach(eng);
  wc.on_job_submitted();
  wc.on_worker_idle(WorkerId(0));           // takes the only task
  wc.on_worker_idle(WorkerId(1));           // starves
  EXPECT_EQ(eng.assignments.size(), 1u);

  eng.dead_workers.insert(WorkerId(0));
  wc.on_worker_failed(WorkerId(0), {TaskId(0)});
  // The starving worker 1 receives the re-homed task immediately.
  ASSERT_EQ(eng.assignments.size(), 2u);
  EXPECT_EQ(eng.assignments[1].first, TaskId(0));
  EXPECT_EQ(eng.assignments[1].second, WorkerId(1));
  EXPECT_EQ(wc.pending_count(), 0u);
}

TEST(WcFailover, DeadStarvingWorkerIsSkipped) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 3);
  auto wc = make_wc();
  wc.attach(eng);
  wc.on_job_submitted();
  wc.on_worker_idle(WorkerId(0));
  wc.on_worker_idle(WorkerId(1));  // starves first
  wc.on_worker_idle(WorkerId(2));  // starves second
  eng.dead_workers.insert(WorkerId(1));  // ...then dies too
  eng.dead_workers.insert(WorkerId(0));
  wc.on_worker_failed(WorkerId(1), {});
  wc.on_worker_failed(WorkerId(0), {TaskId(0)});
  ASSERT_EQ(eng.assignments.size(), 2u);
  EXPECT_EQ(eng.assignments[1].second, WorkerId(2));
}

TEST(WcFailover, CompletedTaskNotReAdded) {
  auto job = make_job({{0}, {1}}, 2);
  FakeEngine eng(job, 1, 2);
  WorkerCentricParams p;
  p.metric = Metric::kRest;
  p.replicate_when_idle = true;
  WorkerCentricScheduler wc(p);
  wc.attach(eng);
  wc.on_job_submitted();
  wc.on_worker_idle(WorkerId(0));  // t0 -> w0
  wc.on_worker_idle(WorkerId(1));  // t1 -> w1
  // w1 finishes t1, then replicates t0 (bag empty).
  wc.on_task_completed(TaskId(1), WorkerId(1));
  wc.on_worker_idle(WorkerId(1));
  ASSERT_EQ(eng.assignments.size(), 3u);
  EXPECT_EQ(eng.assignments[2].first, TaskId(0));
  // w0 finishes t0 -> replica on w1 cancelled.
  wc.on_task_completed(TaskId(0), WorkerId(0));
  ASSERT_EQ(eng.cancellations.size(), 1u);
  // w1's crash now reports the cancelled replica as "lost" — must NOT be
  // re-added (it is complete).
  eng.dead_workers.insert(WorkerId(1));
  wc.on_worker_failed(WorkerId(1), {});
  EXPECT_EQ(wc.pending_count(), 0u);
}

// --- Storage affinity ------------------------------------------------------

TEST(SaFailover, OrphanReassignedToLeastBacklogged) {
  auto job = make_job({{0}, {1}}, 2);
  FakeEngine eng(job, 2, 1);
  StorageAffinityParams p;
  StorageAffinityScheduler sa(p);
  sa.attach(eng);
  sa.on_job_submitted();
  // t0 on w0, t1 on w1 (cold-start balancing).
  eng.assignments.clear();
  eng.dead_workers.insert(WorkerId(0));
  eng.backlogs[WorkerId(1)] = 5;
  sa.on_worker_failed(WorkerId(0), {TaskId(0)});
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
  EXPECT_EQ(eng.assignments[0].second, WorkerId(1));
  EXPECT_EQ(sa.placements(TaskId(0)).size(), 1u);
}

TEST(SaFailover, ReplicatedTaskSurvivesWithoutReassignment) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 2, 1);
  StorageAffinityScheduler sa{StorageAffinityParams{}};
  sa.attach(eng);
  sa.on_job_submitted();          // t0 -> w0
  sa.on_worker_idle(WorkerId(1));  // replica on w1
  eng.assignments.clear();
  eng.dead_workers.insert(WorkerId(0));
  sa.on_worker_failed(WorkerId(0), {TaskId(0)});
  // One live instance remains: no reassignment needed.
  EXPECT_TRUE(eng.assignments.empty());
  EXPECT_EQ(sa.placements(TaskId(0)).size(), 1u);
}

TEST(SaFailover, TotalOutageOrphanPickedUpOnNextIdle) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 1);
  StorageAffinityScheduler sa{StorageAffinityParams{}};
  sa.attach(eng);
  sa.on_job_submitted();
  eng.assignments.clear();
  eng.dead_workers.insert(WorkerId(0));
  sa.on_worker_failed(WorkerId(0), {TaskId(0)});  // nowhere to go
  EXPECT_TRUE(eng.assignments.empty());
  // Worker recovers and asks: orphan pickup path fires.
  eng.dead_workers.clear();
  sa.on_worker_idle(WorkerId(0));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));
}

// --- Workqueue --------------------------------------------------------------

TEST(WqFailover, LostTasksRejoinHeadInOrder) {
  auto job = make_job({{0}, {1}, {2}}, 3);
  FakeEngine eng(job, 1, 2);
  WorkqueueScheduler wq;
  wq.attach(eng);
  wq.on_job_submitted();
  wq.on_worker_idle(WorkerId(0));  // t0
  wq.on_worker_idle(WorkerId(1));  // t1
  eng.assignments.clear();
  eng.dead_workers.insert(WorkerId(0));
  wq.on_worker_failed(WorkerId(0), {TaskId(0)});
  EXPECT_EQ(wq.pending_count(), 2u);
  eng.dead_workers.clear();
  wq.on_worker_idle(WorkerId(0));
  ASSERT_EQ(eng.assignments.size(), 1u);
  EXPECT_EQ(eng.assignments[0].first, TaskId(0));  // head again
}

TEST(WqFailover, StarvingWorkerFedOnRefill) {
  auto job = make_job({{0}}, 1);
  FakeEngine eng(job, 1, 2);
  WorkqueueScheduler wq;
  wq.attach(eng);
  wq.on_job_submitted();
  wq.on_worker_idle(WorkerId(0));
  wq.on_worker_idle(WorkerId(1));  // starves
  eng.dead_workers.insert(WorkerId(0));
  wq.on_worker_failed(WorkerId(0), {TaskId(0)});
  ASSERT_EQ(eng.assignments.size(), 2u);
  EXPECT_EQ(eng.assignments[1].second, WorkerId(1));
}

}  // namespace
}  // namespace wcs::sched
