// Tests for the INI config reader and the experiment-struct mappings.
#include <gtest/gtest.h>

#include "common/config_file.h"
#include "grid/experiment.h"
#include "grid/experiment_io.h"

namespace wcs {
namespace {

TEST(ConfigFile, ParsesSectionsAndKeys) {
  auto cfg = ConfigFile::parse_string(
      "top = 1\n[a]\nx = hello\ny = 2.5\n[b]\nx = -3\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_string("top"), "1");
  EXPECT_EQ(cfg.get_string("a.x"), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("a.y"), 2.5);
  EXPECT_EQ(cfg.get_int("b.x"), -3);
}

TEST(ConfigFile, CommentsAndWhitespace) {
  auto cfg = ConfigFile::parse_string(
      "# full-line comment\n"
      "  [ sec ]  \n"
      "  key = value  # trailing comment\n"
      "; semicolon comment\n"
      "\n"
      "other=1;x\n");
  EXPECT_EQ(cfg.get_string("sec.key"), "value");
  EXPECT_EQ(cfg.get_int("sec.other"), 1);
}

TEST(ConfigFile, Booleans) {
  auto cfg = ConfigFile::parse_string(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
  EXPECT_TRUE(cfg.get_bool("e"));
  EXPECT_THROW((void)ConfigFile::parse_string("x = maybe\n").get_bool("x"),
               std::logic_error);
}

TEST(ConfigFile, FallbacksAndMissing) {
  auto cfg = ConfigFile::parse_string("[s]\nx = 5\n");
  EXPECT_TRUE(cfg.has("s.x"));
  EXPECT_FALSE(cfg.has("s.y"));
  EXPECT_EQ(cfg.get_int_or("s.y", 9), 9);
  EXPECT_EQ(cfg.get_string_or("s.z", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("s.w", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool_or("s.b", true));
  EXPECT_THROW((void)cfg.get_string("s.y"), std::logic_error);
}

TEST(ConfigFile, MalformedInputsThrow) {
  EXPECT_THROW((void)ConfigFile::parse_string("[unclosed\n"),
               std::logic_error);
  EXPECT_THROW((void)ConfigFile::parse_string("novalue\n"), std::logic_error);
  EXPECT_THROW((void)ConfigFile::parse_string("= nokey\n"), std::logic_error);
  EXPECT_THROW((void)ConfigFile::parse_string("[]\nx=1\n"), std::logic_error);
  EXPECT_THROW((void)ConfigFile::parse_string("x=1\nx=2\n"),
               std::logic_error);
}

TEST(ConfigFile, NumericValidation) {
  auto cfg = ConfigFile::parse_string("a = 12abc\nb = 1.5.2\n");
  EXPECT_THROW((void)cfg.get_int("a"), std::logic_error);
  EXPECT_THROW((void)cfg.get_double("b"), std::logic_error);
}

// --- Experiment mapping ----------------------------------------------------

TEST(ExperimentIo, DefaultsMatchPaperTable1) {
  auto cfg = ConfigFile::parse_string("");
  grid::GridConfig c = grid::grid_config_from(cfg);
  EXPECT_EQ(c.tiers.num_sites, 10);
  EXPECT_EQ(c.tiers.workers_per_site, 1);
  EXPECT_EQ(c.capacity_files, 6000u);
  EXPECT_EQ(c.eviction, storage::EvictionPolicy::kLru);
  EXPECT_FALSE(c.replication.has_value());
  EXPECT_FALSE(c.churn.has_value());

  workload::CoaddParams wp = grid::coadd_params_from(cfg);
  EXPECT_EQ(wp.num_tasks, 6000u);
  EXPECT_EQ(wp.file_size, megabytes(25));

  sched::SchedulerSpec s = grid::scheduler_spec_from(cfg);
  EXPECT_EQ(s.name(), "rest");
}

TEST(ExperimentIo, FullRoundTrip) {
  auto cfg = ConfigFile::parse_string(
      "[platform]\n"
      "num_sites = 4\nworkers_per_site = 3\ncapacity_files = 500\n"
      "eviction = minref\nuplink_mbps = 8\n"
      "[workload]\n"
      "num_tasks = 120\nfile_size_mb = 5\nseed = 9\n"
      "[scheduler]\n"
      "algorithm = combined\nchoose_n = 2\ntask_replication = true\n"
      "[replication]\n"
      "enabled = true\nplacement = random\npopularity_threshold = 4\n"
      "[churn]\n"
      "enabled = true\nmean_uptime_h = 10\nmean_downtime_h = 1\n");
  grid::GridConfig c = grid::grid_config_from(cfg);
  EXPECT_EQ(c.tiers.num_sites, 4);
  EXPECT_EQ(c.tiers.workers_per_site, 3);
  EXPECT_EQ(c.capacity_files, 500u);
  EXPECT_EQ(c.eviction, storage::EvictionPolicy::kMinRef);
  EXPECT_DOUBLE_EQ(c.tiers.uplink_bandwidth_bps, mbps(8));
  ASSERT_TRUE(c.replication.has_value());
  EXPECT_EQ(c.replication->placement, replication::Placement::kRandom);
  EXPECT_EQ(c.replication->popularity_threshold, 4u);
  ASSERT_TRUE(c.churn.has_value());
  EXPECT_DOUBLE_EQ(c.churn->mean_uptime_s, hours(10));

  workload::CoaddParams wp = grid::coadd_params_from(cfg);
  EXPECT_EQ(wp.num_tasks, 120u);
  EXPECT_EQ(wp.file_size, megabytes(5));
  EXPECT_EQ(wp.seed, 9u);

  sched::SchedulerSpec s = grid::scheduler_spec_from(cfg);
  EXPECT_EQ(s.name(), "combined.2+repl");
}

TEST(ExperimentIo, RejectsUnknownEnumValues) {
  auto bad_eviction =
      ConfigFile::parse_string("[platform]\neviction = lifo\n");
  EXPECT_THROW((void)grid::grid_config_from(bad_eviction), std::logic_error);
  auto bad_algorithm =
      ConfigFile::parse_string("[scheduler]\nalgorithm = magic\n");
  EXPECT_THROW((void)grid::scheduler_spec_from(bad_algorithm),
               std::logic_error);
}

TEST(ExperimentIo, ConfiguredExperimentRuns) {
  auto cfg = ConfigFile::parse_string(
      "[platform]\nnum_sites = 2\ncapacity_files = 400\n"
      "[workload]\nnum_tasks = 40\nfile_size_mb = 5\n"
      "[scheduler]\nalgorithm = rest\n");
  auto job = workload::generate_coadd(grid::coadd_params_from(cfg));
  auto r = grid::run_once(grid::grid_config_from(cfg), job,
                          grid::scheduler_spec_from(cfg), 1);
  EXPECT_EQ(r.tasks_completed, 40u);
}

}  // namespace
}  // namespace wcs
