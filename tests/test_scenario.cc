// Scenario-registry tests: every catalog entry builds, smoke-runs one
// seed in --fast shape, dumps as JSON the obs parser accepts, and emits
// a schema-valid run report.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/run_report.h"
#include "scenario/catalog.h"
#include "scenario/cli.h"
#include "scenario/runner.h"
#include "scenario/spec_json.h"

namespace wcs::scenario {
namespace {

const std::vector<std::string> kExpected = {
    "table2_workload",     "fig3_cdf",          "fig4_capacity",
    "fig5_transfers",      "fig6_workers",      "table3_contention",
    "fig7_sites",          "fig8_filesize",     "ablation_combined",
    "ablation_choosetask", "ablation_eviction", "ablation_baselines",
    "ext_replication",     "ext_churn",         "open_saturation",
    "open_tenant_mix",     "open_burst",        "data_block_size",
    "data_eviction_dedup", "data_replication_policy"};

BuildOptions small_build() {
  BuildOptions b;
  b.tasks = 120;
  b.fast = true;
  return b;
}

TEST(ScenarioRegistry, CatalogRegistersEveryPaperArtifact) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // idempotent
  EXPECT_EQ(scenario_names(), kExpected);
  for (const std::string& name : kExpected) {
    EXPECT_TRUE(has_scenario(name));
    EXPECT_FALSE(scenario_summary(name).empty());
  }
  EXPECT_FALSE(has_scenario("fig99_bogus"));
}

TEST(ScenarioRegistry, EveryScenarioBuilds) {
  register_builtin_scenarios();
  for (const std::string& name : scenario_names()) {
    ScenarioSpec spec = build_scenario(name, small_build());
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.title.empty()) << name;
    EXPECT_FALSE(spec.metric_name.empty()) << name;
    EXPECT_EQ(spec.workload.coadd.num_tasks, 120u) << name;
    if (spec.is_stats()) {
      EXPECT_TRUE(spec.points.empty()) << name;
    } else {
      EXPECT_FALSE(spec.points.empty()) << name;
      for (const Point& pt : spec.points)
        EXPECT_FALSE(pt.label.empty()) << name;
    }
  }
}

TEST(ScenarioRegistry, UnknownScenarioIsRejected) {
  register_builtin_scenarios();
  EXPECT_THROW((void)build_scenario("fig99_bogus", small_build()),
               std::logic_error);
  EXPECT_THROW((void)scenario_summary("fig99_bogus"), std::logic_error);
}

TEST(ScenarioRegistry, FastCoarsensSweepAxes) {
  register_builtin_scenarios();
  BuildOptions full = small_build();
  full.fast = false;
  EXPECT_LT(build_scenario("fig6_workers", small_build()).points.size(),
            build_scenario("fig6_workers", full).points.size());
  EXPECT_LT(build_scenario("fig7_sites", small_build()).points.size(),
            build_scenario("fig7_sites", full).points.size());
}

TEST(ScenarioDump, EveryDumpParsesWithObsParser) {
  register_builtin_scenarios();
  for (const std::string& name : scenario_names()) {
    ScenarioSpec spec = build_scenario(name, small_build());
    std::ostringstream text;
    dump_scenario(spec, text);
    obs::JsonValue doc = obs::parse_json(text.str());
    ASSERT_TRUE(doc.is_object()) << name;
    ASSERT_TRUE(doc.has("name")) << name;
    EXPECT_EQ(doc.find("name")->string, name);
    ASSERT_TRUE(doc.has("kind")) << name;
    const std::string kind = doc.find("kind")->string;
    if (spec.is_stats()) {
      EXPECT_EQ(kind, "workload-stats") << name;
    } else {
      EXPECT_EQ(kind, "sweep") << name;
      ASSERT_TRUE(doc.find("points")->is_array()) << name;
      EXPECT_EQ(doc.find("points")->array.size(), spec.points.size()) << name;
    }
    EXPECT_TRUE(doc.find("workload")->has("num_tasks")) << name;
  }
}

TEST(ScenarioSmoke, EveryScenarioRunsOneSeedFast) {
  register_builtin_scenarios();
  for (const std::string& name : scenario_names()) {
    ScenarioSpec spec = build_scenario(name, small_build());
    RunOptions ro;
    ro.seeds = 1;
    ro.jobs = 2;
    ro.tasks = 120;
    ro.fast = true;
    std::ostringstream out, err;
    ro.out = &out;
    ro.err = &err;
    EXPECT_EQ(run_scenario(spec, ro), 0) << name;
    EXPECT_FALSE(out.str().empty()) << name;
  }
}

TEST(ScenarioReport, ReportIsSchemaValid) {
  register_builtin_scenarios();
  ScenarioSpec spec = build_scenario("table3_contention", small_build());
  RunOptions ro;
  ro.seeds = 1;
  ro.jobs = 2;
  ro.tasks = 120;
  ro.fast = true;
  ro.report_name = "test_scenario_report";
  const std::string path =
      testing::TempDir() + "/test_scenario_report.json";
  ro.report_path = path;
  std::ostringstream out, err;
  ro.out = &out;
  ro.err = &err;
  ASSERT_EQ(run_scenario(spec, ro), 0);
  EXPECT_TRUE(obs::validate_report_file(path).empty());
}

TEST(ScenarioCli, UnknownScenarioFailsWithUsageError) {
  std::string arg0 = "bench_test";
  std::string a1 = "--scenario";
  std::string a2 = "fig99_bogus";
  std::string a3 = "--no-report";
  char* argv[] = {arg0.data(), a1.data(), a2.data(), a3.data()};
  EXPECT_EQ(scenario_main("fig5_transfers", 4, argv), 2);
}

TEST(ScenarioCli, ListScenariosSucceeds) {
  std::string arg0 = "bench_test";
  std::string a1 = "--list-scenarios";
  char* argv[] = {arg0.data(), a1.data()};
  EXPECT_EQ(scenario_main("fig5_transfers", 2, argv), 0);
}

}  // namespace
}  // namespace wcs::scenario
