// Tests for the proactive data-replication subsystem and the
// worker-centric task-replication extension.
#include <gtest/gtest.h>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "replication/data_replicator.h"
#include "workload/coadd.h"
#include "workload/generators.h"

namespace wcs {
namespace {

// --- DataReplicator unit tests (driven through a mini grid) --------------

struct MiniGrid {
  sim::Simulator sim;
  net::Topology topo;
  NodeId fs;
  std::vector<NodeId> ds_nodes;
  workload::FileCatalog catalog{50, megabytes(1)};
  std::unique_ptr<net::FlowManager> flows;
  std::vector<std::unique_ptr<storage::DataServer>> servers;

  explicit MiniGrid(std::size_t sites = 2, std::size_t capacity = 20) {
    fs = topo.add_node("fs");
    for (std::size_t s = 0; s < sites; ++s) {
      NodeId n = topo.add_node("ds" + std::to_string(s));
      topo.add_link(fs, n, 1e6, 0.001);
      ds_nodes.push_back(n);
    }
    flows = std::make_unique<net::FlowManager>(sim, topo);
    for (std::size_t s = 0; s < sites; ++s)
      servers.push_back(std::make_unique<storage::DataServer>(
          SiteId(static_cast<SiteId::underlying_type>(s)), sim, *flows,
          ds_nodes[s], fs, catalog, capacity,
          storage::EvictionPolicy::kLru));
  }

  std::vector<storage::DataServer*> server_ptrs() {
    std::vector<storage::DataServer*> out;
    for (auto& s : servers) out.push_back(s.get());
    return out;
  }
};

replication::DataReplicatorParams quick_params() {
  replication::DataReplicatorParams p;
  p.popularity_threshold = 3;
  p.check_interval_s = 10;
  return p;
}

TEST(DataReplicator, TracksPopularity) {
  MiniGrid g;
  replication::DataReplicator repl(quick_params(), g.sim, *g.flows, g.fs,
                                   g.catalog, g.server_ptrs());
  repl.on_file_fetched(FileId(1));
  repl.on_file_fetched(FileId(1));
  repl.on_file_fetched(FileId(2));
  EXPECT_EQ(repl.popularity(FileId(1)), 2u);
  EXPECT_EQ(repl.popularity(FileId(2)), 1u);
  EXPECT_EQ(repl.popularity(FileId(3)), 0u);
}

TEST(DataReplicator, ReplicatesOnlyAboveThreshold) {
  MiniGrid g;
  replication::DataReplicator repl(quick_params(), g.sim, *g.flows, g.fs,
                                   g.catalog, g.server_ptrs());
  repl.start();
  for (int i = 0; i < 3; ++i) repl.on_file_fetched(FileId(7));
  repl.on_file_fetched(FileId(8));  // below threshold
  g.sim.run_until(25);
  EXPECT_EQ(repl.stats().files_replicated, 1u);
  bool somewhere = g.servers[0]->cache().contains(FileId(7)) ||
                   g.servers[1]->cache().contains(FileId(7));
  EXPECT_TRUE(somewhere);
  EXPECT_FALSE(g.servers[0]->cache().contains(FileId(8)));
  EXPECT_FALSE(g.servers[1]->cache().contains(FileId(8)));
  repl.stop();
}

TEST(DataReplicator, ReplicatesEachFileOnce) {
  MiniGrid g;
  replication::DataReplicator repl(quick_params(), g.sim, *g.flows, g.fs,
                                   g.catalog, g.server_ptrs());
  repl.start();
  for (int i = 0; i < 10; ++i) repl.on_file_fetched(FileId(7));
  g.sim.run_until(55);  // several scan rounds
  EXPECT_EQ(repl.stats().files_replicated, 1u);
  EXPECT_GT(repl.stats().rounds, 2u);
  repl.stop();
}

TEST(DataReplicator, SkipsSitesThatAlreadyHoldTheFile) {
  MiniGrid g;
  g.servers[0]->cache().insert(FileId(7));
  replication::DataReplicator repl(quick_params(), g.sim, *g.flows, g.fs,
                                   g.catalog, g.server_ptrs());
  repl.start();
  for (int i = 0; i < 3; ++i) repl.on_file_fetched(FileId(7));
  g.sim.run_until(25);
  // Only site 1 was a legal target.
  EXPECT_TRUE(g.servers[1]->cache().contains(FileId(7)));
  repl.stop();
}

TEST(DataReplicator, LeastLoadedPlacementPrefersShortQueue) {
  MiniGrid g;
  // Clog site 0's data server with a long batch.
  std::vector<FileId> big;
  for (unsigned i = 20; i < 35; ++i) big.push_back(FileId(i));
  g.servers[0]->request_batch(TaskId(0), WorkerId(0), big, [] {});
  g.servers[0]->request_batch(
      TaskId(1), WorkerId(0),
      std::vector<FileId>{FileId(40), FileId(41)}, [] {});
  replication::DataReplicatorParams p = quick_params();
  p.placement = replication::Placement::kLeastLoaded;
  replication::DataReplicator repl(p, g.sim, *g.flows, g.fs, g.catalog,
                                   g.server_ptrs());
  repl.start();
  for (int i = 0; i < 3; ++i) repl.on_file_fetched(FileId(7));
  g.sim.run_until(12);  // one scan while site 0 still has a queue
  g.sim.run_until(60);
  EXPECT_TRUE(g.servers[1]->cache().contains(FileId(7)));
  repl.stop();
  g.sim.run();
}

TEST(DataReplicator, StopCancelsScansAndFlows) {
  MiniGrid g;
  replication::DataReplicator repl(quick_params(), g.sim, *g.flows, g.fs,
                                   g.catalog, g.server_ptrs());
  repl.start();
  for (int i = 0; i < 3; ++i) repl.on_file_fetched(FileId(7));
  repl.stop();
  g.sim.run();
  EXPECT_EQ(repl.stats().files_replicated, 0u);
  EXPECT_EQ(repl.stats().rounds, 0u);
  // Idempotent.
  repl.stop();
}

TEST(DataReplicator, PlacementNames) {
  EXPECT_STREQ(replication::to_string(replication::Placement::kRandom),
               "random");
  EXPECT_STREQ(replication::to_string(replication::Placement::kLeastLoaded),
               "least-loaded");
}

// --- Integration through GridSimulation ----------------------------------

TEST(ReplicationIntegration, RunsToCompletionAndReportsStats) {
  workload::GeneratorParams gp;
  gp.num_tasks = 60;
  gp.num_files = 300;
  gp.files_per_task = 10;
  gp.file_size = megabytes(5);
  auto job = workload::generate_zipf(gp, 1.2);  // hot files: replication bites
  grid::GridConfig c;
  // More sites than the popularity threshold, so a hot file is NOT yet
  // resident everywhere when it becomes replication-eligible.
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 300;
  replication::DataReplicatorParams rp;
  rp.popularity_threshold = 2;
  rp.check_interval_s = 300;
  c.replication = rp;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.tasks_completed, 60u);
  EXPECT_GT(r.files_replicated, 0u);
  EXPECT_GT(r.bytes_replicated, 0.0);
}

TEST(ReplicationIntegration, RaceWithDemandFetchesSurvives) {
  // Regression for the demand-fetch/replica race: aggressive replication
  // (low threshold, short interval) + storage affinity's bursty queues
  // maximize the chance a replica lands while the same file is being
  // demand-fetched at the same site.
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 500;
  replication::DataReplicatorParams rp;
  rp.popularity_threshold = 2;
  rp.check_interval_s = 200;  // very chatty
  rp.max_replicas_per_round = 100;
  c.replication = rp;
  sched::SchedulerSpec sa;
  sa.algorithm = sched::Algorithm::kStorageAffinity;
  auto r = grid::run_once(c, job, sa, 1);
  EXPECT_EQ(r.tasks_completed, 200u);
  EXPECT_GT(r.files_replicated, 0u);
}

TEST(ReplicationIntegration, DisabledByDefault) {
  workload::CoaddParams cp;
  cp.num_tasks = 40;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 300;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.files_replicated, 0u);
}

TEST(ReplicationIntegration, DeterministicWithReplication) {
  workload::CoaddParams cp;
  cp.num_tasks = 60;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 300;
  replication::DataReplicatorParams rp;
  rp.popularity_threshold = 4;
  rp.check_interval_s = 1200;
  c.replication = rp;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  auto r1 = grid::run_once(c, job, spec, 2);
  auto r2 = grid::run_once(c, job, spec, 2);
  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.files_replicated, r2.files_replicated);
}

// --- Worker-centric task replication --------------------------------------

TEST(WcTaskReplication, NameCarriesSuffix) {
  sched::SchedulerSpec s;
  s.algorithm = sched::Algorithm::kRest;
  s.choose_n = 2;
  s.task_replication = true;
  EXPECT_EQ(s.name(), "rest.2+repl");
}

TEST(WcTaskReplication, ReplicatesTailAndCancels) {
  workload::CoaddParams cp;
  cp.num_tasks = 80;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 300;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  spec.task_replication = true;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.tasks_completed, 80u);
  EXPECT_GT(r.replicas_started, 0u);
  EXPECT_EQ(r.assignments, 80u + r.replicas_started);
  EXPECT_GE(r.replicas_started, r.replicas_cancelled);
}

TEST(WcTaskReplication, OffByDefaultNoReplicas) {
  workload::CoaddParams cp;
  cp.num_tasks = 50;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 300;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  auto r = grid::run_once(c, job, spec, 1);
  EXPECT_EQ(r.replicas_started, 0u);
}

TEST(WcTaskReplication, NeverHurtsCompletionInvariant) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    workload::CoaddParams cp;
    cp.num_tasks = 60;
    cp.seed = seed;
    auto job = workload::generate_coadd(cp);
    grid::GridConfig c;
    c.tiers.num_sites = 2;
    c.tiers.workers_per_site = 3;
    c.capacity_files = 400;
    sched::SchedulerSpec spec;
    spec.algorithm = sched::Algorithm::kCombined;
    spec.choose_n = 2;
    spec.task_replication = true;
    auto r = grid::run_once(c, job, spec, seed);
    EXPECT_EQ(r.tasks_completed, 60u);
  }
}

}  // namespace
}  // namespace wcs
