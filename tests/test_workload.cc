// Tests for the workload model, the Coadd generator (paper Table 2 /
// Figure 3 calibration targets), the generic generators, and trace I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "workload/coadd.h"
#include "workload/generators.h"
#include "workload/job.h"
#include "workload/trace.h"

namespace wcs::workload {
namespace {

// --- FileCatalog / Job basics --------------------------------------------

TEST(FileCatalog, UniformSizes) {
  FileCatalog c(10, megabytes(25));
  EXPECT_EQ(c.num_files(), 10u);
  EXPECT_EQ(c.size(FileId(3)), megabytes(25));
  EXPECT_EQ(c.total_bytes(), 10u * megabytes(25));
}

TEST(FileCatalog, AddFile) {
  FileCatalog c;
  FileId f = c.add_file(123);
  EXPECT_EQ(f.value(), 0u);
  EXPECT_EQ(c.size(f), 123u);
}

TEST(FileCatalog, OutOfRangeThrows) {
  FileCatalog c(2, 1);
  EXPECT_THROW((void)c.size(FileId(5)), std::logic_error);
}

TEST(Job, TaskBytes) {
  Job job;
  job.catalog = FileCatalog(3, megabytes(5));
  job.add_task({FileId(0), FileId(2)}, 1);
  EXPECT_EQ(job.task_bytes(TaskId(0)), 2 * megabytes(5));
}

TEST(ValidateJob, RejectsDuplicateFiles) {
  Job job;
  job.catalog = FileCatalog(3, 1);
  job.add_task({FileId(1), FileId(1)}, 1);
  EXPECT_THROW(validate_job(job), std::logic_error);
}

TEST(ValidateJob, RejectsUnknownFile) {
  Job job;
  job.catalog = FileCatalog(1, 1);
  job.add_task({FileId(7)}, 1);
  EXPECT_THROW(validate_job(job), std::logic_error);
}

TEST(ValidateJob, RejectsZeroComputeCost) {
  Job job;
  job.catalog = FileCatalog(1, 1);
  job.add_task({FileId(0)}, 0.0);
  EXPECT_THROW(validate_job(job), std::logic_error);
}

TEST(ComputeStats, SmallHandCase) {
  Job job;
  job.catalog = FileCatalog(4, 1);
  auto add = [&](std::initializer_list<unsigned> files) {
    std::vector<FileId> f;
    for (unsigned x : files) f.push_back(FileId(x));
    job.add_task(f, 1);
  };
  add({0, 1});
  add({1, 2, 3});
  add({1});
  JobStats s = compute_stats(job);
  EXPECT_EQ(s.num_tasks, 3u);
  EXPECT_EQ(s.distinct_files, 4u);
  EXPECT_EQ(s.max_files_per_task, 3u);
  EXPECT_EQ(s.min_files_per_task, 1u);
  EXPECT_DOUBLE_EQ(s.avg_files_per_task, 2.0);
  // file 1 has 3 refs; files 0,2,3 have 1.
  EXPECT_DOUBLE_EQ(s.refs_cdf.fraction_at_least(3), 0.25);
  EXPECT_DOUBLE_EQ(s.refs_cdf.fraction_at_least(1), 1.0);
}

// --- Coadd generator: Table 2 calibration --------------------------------

class CoaddPaperScale : public ::testing::Test {
 protected:
  static const Job& job() {
    static const Job j = generate_coadd(CoaddParams::paper_6000());
    return j;
  }
  static const JobStats& stats() {
    static const JobStats s = compute_stats(job());
    return s;
  }
};

TEST_F(CoaddPaperScale, TaskCount) { EXPECT_EQ(stats().num_tasks, 6000u); }

TEST_F(CoaddPaperScale, DistinctFilesNearTable2) {
  // Paper Table 2: 53,390 total files at 6,000 tasks. Allow 3%.
  EXPECT_NEAR(static_cast<double>(stats().distinct_files), 53390.0,
              53390.0 * 0.03);
}

TEST_F(CoaddPaperScale, FilesPerTaskRangeMatchesTable2) {
  // Paper: min 36, max 101.
  EXPECT_GE(stats().min_files_per_task, 36u);
  EXPECT_LE(stats().max_files_per_task, 101u);
}

TEST_F(CoaddPaperScale, MeanFilesPerTaskNearTable2) {
  // Paper: 78.43 on average. Allow +-2.
  EXPECT_NEAR(stats().avg_files_per_task, 78.43, 2.0);
}

TEST_F(CoaddPaperScale, ReferenceSharingMatchesFigure3) {
  // Paper Fig. 3: roughly 85% of files are accessed by 6 or more tasks.
  double frac6 = stats().refs_cdf.fraction_at_least(6);
  EXPECT_GT(frac6, 0.78);
  EXPECT_LT(frac6, 0.93);
  // And everything is referenced at least once (by construction of the
  // stats: only referenced files are counted).
  EXPECT_DOUBLE_EQ(stats().refs_cdf.fraction_at_least(1), 1.0);
}

TEST_F(CoaddPaperScale, PopularTailExists) {
  // The calibration-file pool produces a high-reference tail (Fig. 1's
  // x-axis reaches 12+ references).
  EXPECT_GT(stats().refs_cdf.fraction_at_least(12), 0.0);
}

TEST_F(CoaddPaperScale, ComputeCostScalesWithFiles) {
  const Job& j = job();
  for (const Task& t : j.tasks())
    EXPECT_DOUBLE_EQ(t.mflop, 2.0e5 * static_cast<double>(t.files.size()));
}

TEST_F(CoaddPaperScale, UniformFileSize) {
  EXPECT_EQ(job().catalog.size(FileId(0)), megabytes(25));
}

TEST(Coadd, DeterministicForSeed) {
  CoaddParams p;
  p.num_tasks = 200;
  Job a = generate_coadd(p);
  Job b = generate_coadd(p);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    EXPECT_TRUE(std::ranges::equal(a.task(id).files, b.task(id).files));
  }
}

TEST(Coadd, SeedChangesLayout) {
  CoaddParams p1, p2;
  p1.num_tasks = p2.num_tasks = 200;
  p2.seed = p1.seed + 1;
  Job a = generate_coadd(p1);
  Job b = generate_coadd(p2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_tasks() && !any_diff; ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    any_diff = !std::ranges::equal(a.task(id).files, b.task(id).files);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Coadd, StripeNeighborsOverlapHeavily) {
  CoaddParams p;
  p.num_tasks = 600;
  p.num_rows = 2;
  Job j = generate_coadd(p);
  // Tasks are emitted round-robin over rows: stripe-neighbours are
  // num_rows ids apart and share most files (spatial structure). Average
  // over many pairs (individual pairs vary with stride jumps and window
  // subsampling).
  double total_fraction = 0;
  const std::size_t kPairs = 50;
  for (std::size_t i = 0; i < kPairs; ++i) {
    const auto a = j.task(TaskId(static_cast<TaskId::underlying_type>(
                              i * 2))).files;      // row 0, window k = i
    const auto b = j.task(TaskId(static_cast<TaskId::underlying_type>(
                              i * 2 + 2))).files;  // row 0, window k = i+1
    std::unordered_set<FileId> sa(a.begin(), a.end());
    std::size_t shared = 0;
    for (FileId f : b)
      if (sa.count(f)) ++shared;
    total_fraction += static_cast<double>(shared) /
                      static_cast<double>(b.size());
  }
  EXPECT_GT(total_fraction / kPairs, 0.5);
}

TEST(Coadd, ConsecutiveIdsAreDifferentStripes) {
  CoaddParams p;
  p.num_tasks = 400;
  p.num_rows = 4;
  p.popular_picks_per_task = 0;  // isolate the row structure
  Job j = generate_coadd(p);
  // Task 0 (row 0) and task 1 (row 1) live in disjoint file regions.
  const Task t0 = j.task(TaskId(0));
  std::unordered_set<FileId> row0(t0.files.begin(), t0.files.end());
  for (FileId f : j.task(TaskId(1)).files) EXPECT_EQ(row0.count(f), 0u);
}

TEST(Coadd, ScalesToOtherTaskCounts) {
  CoaddParams p;
  p.num_tasks = 1000;
  Job j = generate_coadd(p);
  JobStats s = compute_stats(j);
  EXPECT_EQ(s.num_tasks, 1000u);
  // Auto target: ~8.9 distinct files per task (looser at small scale:
  // per-row rounding and pass offsets weigh more).
  EXPECT_NEAR(static_cast<double>(s.distinct_files), 8900.0, 8900.0 * 0.10);
}

TEST(Coadd, ValidatedOutput) {
  CoaddParams p;
  p.num_tasks = 300;
  EXPECT_NO_THROW(validate_job(generate_coadd(p)));
}

// --- Generic generators ---------------------------------------------------

TEST(Generators, UniformShapes) {
  GeneratorParams p;
  p.num_tasks = 50;
  p.num_files = 200;
  p.files_per_task = 10;
  Job j = generate_uniform(p);
  EXPECT_EQ(j.num_tasks(), 50u);
  for (const Task& t : j.tasks()) EXPECT_EQ(t.files.size(), 10u);
  EXPECT_NO_THROW(validate_job(j));
}

TEST(Generators, ZipfSkewsPopularity) {
  GeneratorParams p;
  p.num_tasks = 200;
  p.num_files = 100;
  p.files_per_task = 5;
  Job j = generate_zipf(p, 1.2);
  JobStats s = compute_stats(j);
  // The hottest file should be referenced far more than the median file.
  auto pts = s.refs_cdf.points();
  EXPECT_GT(pts.back().first, 40u);  // hot file in most tasks
}

TEST(Generators, PartitionedHasZeroSharing) {
  GeneratorParams p;
  p.num_tasks = 30;
  p.files_per_task = 4;
  Job j = generate_partitioned(p);
  JobStats s = compute_stats(j);
  EXPECT_EQ(s.distinct_files, 120u);
  EXPECT_DOUBLE_EQ(s.refs_cdf.fraction_at_least(2), 0.0);
}

TEST(Generators, SlidingWindowOverlap) {
  Job j = generate_sliding_window(10, 8, 2);
  // task t and t+1 share width - stride = 6 files.
  const Task t0 = j.task(TaskId(0));
  std::unordered_set<FileId> a(t0.files.begin(), t0.files.end());
  std::size_t shared = 0;
  for (FileId f : j.task(TaskId(1)).files)
    if (a.count(f)) ++shared;
  EXPECT_EQ(shared, 6u);
}

TEST(Generators, UniformRequiresFeasibleParams) {
  GeneratorParams p;
  p.num_files = 5;
  p.files_per_task = 10;
  EXPECT_THROW((void)generate_uniform(p), std::logic_error);
}

// --- Trace round trip -----------------------------------------------------

TEST(Trace, RoundTripPreservesJob) {
  CoaddParams p;
  p.num_tasks = 100;
  Job a = generate_coadd(p);
  std::stringstream ss;
  save_job(a, ss);
  Job b = load_job(ss);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.catalog.num_files(), b.catalog.num_files());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    EXPECT_TRUE(std::ranges::equal(a.task(id).files, b.task(id).files));
    EXPECT_DOUBLE_EQ(a.task(id).mflop, b.task(id).mflop);
  }
  for (FileId::underlying_type f = 0; f < a.catalog.num_files(); ++f)
    EXPECT_EQ(a.catalog.size(FileId(f)), b.catalog.size(FileId(f)));
}

TEST(Trace, IgnoresCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# a comment\n\njob tiny\nfiles 2\nfilesize 0 100\nfilesize 1 200\n"
     << "task 0 5.5 0 1\n";
  Job j = load_job(ss);
  EXPECT_EQ(j.name(), "tiny");
  EXPECT_EQ(j.num_tasks(), 1u);
  EXPECT_EQ(j.catalog.size(FileId(1)), 200u);
  EXPECT_DOUBLE_EQ(j.task(TaskId(0)).mflop, 5.5);
}

TEST(Trace, RejectsUnknownDirective) {
  std::stringstream ss;
  ss << "bogus 1 2 3\n";
  EXPECT_THROW((void)load_job(ss), std::logic_error);
}

}  // namespace
}  // namespace wcs::workload
