// Unit tests for src/common: strong ids, rng, stats, csv, units.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/csv.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace wcs {
namespace {

// --- StrongId -----------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  TaskId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, TaskId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  FileId f(42);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(TaskId(1), TaskId(2));
  EXPECT_EQ(TaskId(7), TaskId(7));
  EXPECT_NE(TaskId(7), TaskId(8));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, FileId>);
  static_assert(!std::is_same_v<WorkerId, SiteId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId(1));
  set.insert(TaskId(2));
  set.insert(TaskId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamOutput) {
  std::ostringstream os;
  os << TaskId(5) << " " << TaskId();
  EXPECT_EQ(os.str(), "5 <invalid>");
}

// --- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_real(0.5, 2.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng a(99);
  Rng child = a.fork();
  // The child stream must not replay the parent stream.
  Rng b(99);
  (void)b.uniform_int(0, 1 << 30);  // consume what fork() consumed
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (child.uniform_int(0, 1 << 30) == a.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  double ratio = static_cast<double>(counts[2]) / counts[1];
  EXPECT_NEAR(ratio, 3.0, 0.35);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(5);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(w)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, WeightedIndexSingleElement) {
  Rng rng(5);
  std::vector<double> w{0.7};
  EXPECT_EQ(rng.weighted_index(w), 0u);
}

TEST(Rng, ZipfRanksInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    auto r = rng.zipf(50, 1.0);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(11);
  int low = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.zipf(100, 1.0) <= 10) ++low;
  // Under Zipf(1.0, n=100), P(rank <= 10) ~ H(10)/H(100) ~ 0.56.
  EXPECT_GT(low, kDraws / 3);
}

// --- RunningStats -------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double v = rng.uniform_real(0, 10);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
}

// --- ReverseCdf ---------------------------------------------------------

TEST(ReverseCdf, FractionAtLeast) {
  ReverseCdf cdf;
  for (std::size_t v : {1u, 2u, 6u, 6u, 8u, 10u}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(1), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(6), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(11), 0.0);
}

TEST(ReverseCdf, PointsAreMonotoneDecreasing) {
  ReverseCdf cdf;
  Rng rng(4);
  for (int i = 0; i < 500; ++i)
    cdf.add(static_cast<std::size_t>(rng.uniform_int(0, 20)));
  auto pts = cdf.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].first, pts[i].first);
    EXPECT_GE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.front().second, 1.0);
}

TEST(ReverseCdf, EmptyIsSafe) {
  ReverseCdf cdf;
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(1), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

// --- Histogram ----------------------------------------------------------

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0, 10, 5);
  h.add(-1);    // underflow
  h.add(0);     // bucket 0
  h.add(3.9);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10);    // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.count(), 5u);
}

// --- CsvWriter ----------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("plain", "with,comma", "with\"quote");
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, RejectsMismatchedColumnCount) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row(1), std::logic_error);
}

// --- Units --------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_EQ(megabytes(25), 25'000'000u);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(25)), 25.0);
  EXPECT_DOUBLE_EQ(mbps(8), 1e6);  // 8 Mbit/s == 1 MB/s
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(to_minutes(90), 1.5);
  EXPECT_DOUBLE_EQ(to_hours(7200), 2.0);
  EXPECT_DOUBLE_EQ(gigaflops_to_mflops(2.5), 2500.0);
}

}  // namespace
}  // namespace wcs
