// Control-plane unit tests: cancel_task false-return paths and the
// default Scheduler::on_worker_failed no-op under injected churn.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "grid/grid_simulation.h"
#include "workload/job.h"

namespace wcs::grid {
namespace {

// Zero-jitter platform so timing is exactly computable.
GridConfig exact_config(int sites, int workers_per_site,
                        std::size_t capacity) {
  GridConfig c;
  c.tiers.num_sites = sites;
  c.tiers.workers_per_site = workers_per_site;
  c.tiers.jitter = 0.0;
  c.tiers.seed = 1;
  c.capacity_files = capacity;
  return c;
}

workload::Job tiny_job(std::size_t tasks, Bytes file_size = megabytes(25)) {
  workload::Job job;
  job.set_name("tiny");
  job.catalog = workload::FileCatalog(tasks, file_size);
  for (std::size_t i = 0; i < tasks; ++i) {
    // Negligible compute: network-only timing.
    job.add_task({FileId(static_cast<FileId::underlying_type>(i))}, 1e-6);
  }
  return job;
}

// Pull scheduler scripted from the test: assigns tasks from an explicit
// bag; the test mutates the bag between probes. Uses the DEFAULT
// (no-op) Scheduler::on_worker_failed.
class BagScheduler : public sched::Scheduler {
 public:
  void on_job_submitted() override {}
  void on_worker_idle(WorkerId worker) override {
    std::size_t grant = first_idle_grant_ > 0 ? first_idle_grant_ : 1;
    first_idle_grant_ = 0;
    while (grant-- > 0 && !bag_.empty()) {
      engine().assign_task(bag_.front(), worker);
      bag_.erase(bag_.begin());
    }
  }
  void on_task_completed(TaskId task, WorkerId) override {
    completed_.push_back(task);
  }
  [[nodiscard]] std::string name() const override { return "bag"; }

  std::vector<TaskId>& bag() { return bag_; }
  // The first on_worker_idle hands out this many tasks at once (creates
  // a queued instance behind the active one).
  void set_first_idle_grant(std::size_t n) { first_idle_grant_ = n; }
  [[nodiscard]] const std::vector<TaskId>& completed() const {
    return completed_;
  }

 private:
  std::vector<TaskId> bag_;
  std::size_t first_idle_grant_ = 0;
  std::vector<TaskId> completed_;
};

TEST(ControlPlaneCancel, FalseForWrongWorkerAndUnheldTask) {
  // 1 site, 2 workers; t0 -> w0 and t1 -> w1, both fetching 25 MB over
  // the shared 2 Mbit/s uplink (fetch >> probe time).
  auto job = tiny_job(2);
  GridConfig c = exact_config(1, 2, 100);
  auto sched = std::make_unique<BagScheduler>();
  BagScheduler* bag = sched.get();
  bag->bag() = {TaskId(0), TaskId(1)};
  GridSimulation sim(c, job, std::move(sched));

  bool wrong_worker = true, wrong_task = true, held = false;
  sim.simulator().schedule_in(5.0, [&] {
    // Both instances exist, but each on the OTHER worker.
    wrong_worker = sim.cancel_task(TaskId(0), WorkerId(1));
    wrong_task = sim.cancel_task(TaskId(1), WorkerId(0));
    held = sim.cancel_task(TaskId(1), WorkerId(1));  // real instance
    // Re-home the cancelled task or the run cannot drain.
    bag->bag().push_back(TaskId(1));
  });
  auto r = sim.run();

  EXPECT_FALSE(wrong_worker);
  EXPECT_FALSE(wrong_task);
  EXPECT_TRUE(held);
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_EQ(r.replicas_cancelled, 1u);
  // Completed task: the instance ledger is empty again.
  EXPECT_FALSE(sim.cancel_task(TaskId(0), WorkerId(0)));
  EXPECT_FALSE(sim.cancel_task(TaskId(1), WorkerId(1)));
}

TEST(ControlPlaneCancel, QueuedInstanceCancelledWithoutDisturbingActive) {
  // w0 fetches t0 with t1 queued behind it; cancelling the QUEUED
  // instance must not touch the in-flight batch.
  auto job = tiny_job(2);
  GridConfig c = exact_config(1, 1, 100);
  auto sched = std::make_unique<BagScheduler>();
  BagScheduler* bag = sched.get();
  bag->bag() = {TaskId(0), TaskId(1)};
  bag->set_first_idle_grant(2);
  GridSimulation sim(c, job, std::move(sched));

  bool queued_cancel = false;
  std::size_t backlog_after = 99;
  sim.simulator().schedule_in(5.0, [&] {
    queued_cancel = sim.cancel_task(TaskId(1), WorkerId(0));
    backlog_after = sim.worker_backlog(WorkerId(0));
    bag->bag().push_back(TaskId(1));
  });
  auto r = sim.run();

  EXPECT_TRUE(queued_cancel);
  EXPECT_EQ(backlog_after, 1u);  // only the fetching instance remains
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_EQ(r.total_file_transfers(), 2u);  // t0's batch was not restarted
}

TEST(ControlPlaneChurn, DefaultOnWorkerFailedIsSafeNoOp) {
  // The default Scheduler::on_worker_failed ignores the lost instances.
  // A crash must still withdraw them exactly once, and a bag scheduler
  // that re-offers uncompleted tasks drains the job after recovery with
  // no replica bookkeeping drift.
  auto job = tiny_job(3);
  GridConfig c = exact_config(1, 1, 100);
  GridConfig::ChurnParams churn;
  churn.mean_uptime_s = 1e12;  // no random failure within the run
  c.churn = churn;
  auto sched = std::make_unique<BagScheduler>();
  BagScheduler* bag = sched.get();
  bag->bag() = {TaskId(0), TaskId(1), TaskId(2)};
  bag->set_first_idle_grant(2);  // t0 fetching + t1 queued at crash time
  GridSimulation sim(c, job, std::move(sched));

  bool alive_after_crash = true;
  bool cancel_on_offline = true;
  ControlPlane::WorkerPhase phase_after_crash = ControlPlane::WorkerPhase::kIdle;
  sim.simulator().schedule_in(5.0, [&] {
    sim.fault_plane()->fail_now(WorkerId(0));
    // Default no-op handler: nothing was re-homed; restock the bag so
    // the recovered worker pulls the lost tasks again.
    bag->bag().insert(bag->bag().begin(), {TaskId(0), TaskId(1)});
  });
  sim.simulator().schedule_in(10.0, [&] {
    alive_after_crash = sim.worker_alive(WorkerId(0));
    phase_after_crash = sim.control_plane().worker_phase(WorkerId(0));
    cancel_on_offline = sim.cancel_task(TaskId(0), WorkerId(0));
  });
  sim.simulator().schedule_in(20.0,
                              [&] { sim.fault_plane()->recover_now(WorkerId(0)); });
  auto r = sim.run();

  EXPECT_FALSE(alive_after_crash);
  EXPECT_EQ(phase_after_crash, ControlPlane::WorkerPhase::kOffline);
  EXPECT_FALSE(cancel_on_offline);  // instances were already withdrawn
  EXPECT_EQ(r.tasks_completed, 3u);
  EXPECT_EQ(r.worker_failures, 1u);
  EXPECT_EQ(r.worker_recoveries, 1u);
  EXPECT_EQ(r.instances_lost, 2u);  // fetching t0 + queued t1, once each
  EXPECT_EQ(r.replicas_started, 0u);  // re-homing after loss is no replica
  EXPECT_EQ(bag->completed().size(), 3u);
}

}  // namespace
}  // namespace wcs::grid
