// A minimal in-memory GridEngine for scheduler unit tests: caches are
// plain FileCaches the test mutates directly; assignments and
// cancellations are recorded instead of simulated.
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sched/scheduler.h"
#include "storage/file_cache.h"
#include "workload/job.h"

namespace wcs::sched::testing {

class FakeEngine final : public GridEngine {
 public:
  FakeEngine(const workload::Job& job, std::size_t num_sites,
             std::size_t workers_per_site, std::size_t capacity = 1000,
             storage::EvictionPolicy policy = storage::EvictionPolicy::kLru)
      : job_(job), workers_per_site_(workers_per_site) {
    for (std::size_t s = 0; s < num_sites; ++s)
      caches_.emplace_back(capacity, policy);
  }

  [[nodiscard]] const workload::Job& job() const override { return job_; }
  [[nodiscard]] std::size_t num_sites() const override {
    return caches_.size();
  }
  [[nodiscard]] std::size_t num_workers() const override {
    return caches_.size() * workers_per_site_;
  }
  [[nodiscard]] SiteId site_of(WorkerId worker) const override {
    return SiteId(static_cast<SiteId::underlying_type>(worker.value() /
                                                       workers_per_site_));
  }
  [[nodiscard]] const storage::FileCache& site_cache(
      SiteId site) const override {
    return caches_.at(site.value());
  }
  void set_cache_listener(SiteId site,
                          storage::CacheListener listener) override {
    caches_.at(site.value()).set_listener(std::move(listener));
  }
  void assign_task(TaskId task, WorkerId worker) override {
    assignments.emplace_back(task, worker);
  }
  bool cancel_task(TaskId task, WorkerId worker) override {
    cancellations.emplace_back(task, worker);
    return true;
  }
  [[nodiscard]] bool worker_alive(WorkerId worker) const override {
    return !dead_workers.count(worker);
  }
  [[nodiscard]] std::size_t worker_backlog(WorkerId worker) const override {
    auto it = backlogs.find(worker);
    return it == backlogs.end() ? 0 : it->second;
  }

  // Test-side cache mutation helpers (fire listeners like the real
  // data server would: insert, then access).
  void add_file(SiteId site, FileId file) {
    storage::FileCache& c = caches_.at(site.value());
    if (!c.contains(file)) c.insert(file);
    c.record_access(file);
  }
  storage::FileCache& cache(SiteId site) { return caches_.at(site.value()); }

  std::vector<std::pair<TaskId, WorkerId>> assignments;
  std::vector<std::pair<TaskId, WorkerId>> cancellations;
  std::set<WorkerId> dead_workers;
  std::map<WorkerId, std::size_t> backlogs;

 private:
  const workload::Job& job_;
  std::size_t workers_per_site_;
  std::vector<storage::FileCache> caches_;
};

// Builds a tiny job from explicit file lists.
inline workload::Job make_job(
    std::vector<std::vector<unsigned>> file_sets, std::size_t num_files,
    Bytes file_size = 1000000) {
  workload::Job job;
  job.set_name("test");
  job.catalog = workload::FileCatalog(num_files, file_size);
  std::vector<FileId> files;
  for (const std::vector<unsigned>& set : file_sets) {
    files.clear();
    for (unsigned f : set) files.push_back(FileId(f));
    job.add_task(files, 1.0);
  }
  workload::validate_job(job);
  return job;
}

}  // namespace wcs::sched::testing
