// Tests for storage::DataServer: serial batch service, queue/transfer
// accounting (Table 3's two columns), cancellation, pin handover.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.h"
#include "net/flow_manager.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "storage/data_server.h"

namespace wcs::storage {
namespace {

// One site (data server) connected to the file server by a 1 MB/s,
// zero-latency link; all files 1 MB, so each miss costs exactly 1 s.
struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  NodeId fs, ds_node;
  workload::FileCatalog catalog{100, megabytes(1)};
  std::unique_ptr<net::FlowManager> flows;
  std::unique_ptr<DataServer> ds;

  explicit Fixture(std::size_t capacity = 50,
                   EvictionPolicy policy = EvictionPolicy::kLru) {
    fs = topo.add_node("fs");
    ds_node = topo.add_node("ds");
    topo.add_link(fs, ds_node, 1e6, 0.0);
    flows = std::make_unique<net::FlowManager>(sim, topo);
    ds = std::make_unique<DataServer>(SiteId(0), sim, *flows, ds_node, fs,
                                      catalog, capacity, policy);
  }

  static std::vector<FileId> files(std::initializer_list<unsigned> ids) {
    std::vector<FileId> out;
    for (unsigned i : ids) out.push_back(FileId(i));
    return out;
  }
};

TEST(DataServer, ColdBatchFetchesEverything) {
  Fixture f;
  auto batch = Fixture::files({1, 2, 3});
  double done_at = -1;
  f.ds->request_batch(TaskId(0), WorkerId(0), batch,
                      [&] { done_at = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);  // 3 sequential 1 MB fetches at 1 MB/s
  EXPECT_EQ(f.ds->stats().file_transfers, 3u);
  EXPECT_EQ(f.ds->stats().cache_hits, 0u);
  EXPECT_EQ(f.ds->stats().batches_served, 1u);
  EXPECT_NEAR(f.ds->stats().bytes_transferred, 3e6, 1);
  for (unsigned i : {1u, 2u, 3u}) EXPECT_TRUE(f.ds->cache().contains(FileId(i)));
}

TEST(DataServer, WarmFilesAreHitsNotTransfers) {
  Fixture f;
  double t1 = -1;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}),
                      [&] { t1 = f.sim.now(); });
  f.sim.run();
  f.ds->release(TaskId(0), WorkerId(0));
  double t2 = -1;
  f.ds->request_batch(TaskId(1), WorkerId(0), Fixture::files({1, 2, 3}),
                      [&] { t2 = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 3.0, 1e-9);  // only file 3 transfers
  EXPECT_EQ(f.ds->stats().file_transfers, 3u);
  EXPECT_EQ(f.ds->stats().cache_hits, 2u);
}

TEST(DataServer, ServesBatchesOneAtATime) {
  Fixture f;
  std::vector<double> done;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}),
                      [&] { done.push_back(f.sim.now()); });
  f.ds->request_batch(TaskId(1), WorkerId(1), Fixture::files({3, 4}),
                      [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  // Serial service: batch 2 waits for batch 1 (paper Sec. 2.2 item 3).
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
}

TEST(DataServer, WaitingTimeMeasuresQueueDelay) {
  Fixture f;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}), [] {});
  f.ds->request_batch(TaskId(1), WorkerId(1), Fixture::files({3}), [] {});
  f.sim.run();
  // Batch 0 waits 0 s; batch 1 waits the 2 s service of batch 0.
  EXPECT_NEAR(f.ds->stats().waiting_s, 2.0, 1e-9);
  EXPECT_NEAR(f.ds->stats().transfer_s, 3.0, 1e-9);
}

TEST(DataServer, SecondBatchBenefitsFromFirstBatchFiles) {
  Fixture f;
  std::vector<double> done;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}),
                      [&] { done.push_back(f.sim.now()); });
  f.ds->request_batch(TaskId(1), WorkerId(1), Fixture::files({1, 2, 3}),
                      [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  EXPECT_NEAR(done[1], 3.0, 1e-9);  // files 1,2 already resident
  EXPECT_EQ(f.ds->stats().file_transfers, 3u);
  EXPECT_EQ(f.ds->stats().cache_hits, 2u);
}

TEST(DataServer, BatchFilesArePinnedUntilRelease) {
  Fixture f(3);  // tiny cache
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2, 3}), [] {});
  f.sim.run();
  for (unsigned i : {1u, 2u, 3u}) EXPECT_TRUE(f.ds->cache().pinned(FileId(i)));
  f.ds->release(TaskId(0), WorkerId(0));
  for (unsigned i : {1u, 2u, 3u}) EXPECT_FALSE(f.ds->cache().pinned(FileId(i)));
}

TEST(DataServer, ReleaseUnknownBatchThrows) {
  Fixture f;
  EXPECT_THROW(f.ds->release(TaskId(9), WorkerId(9)), std::logic_error);
}

TEST(DataServer, RefCountsIncrementOncePerBatch) {
  Fixture f;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1}), [] {});
  f.sim.run();
  f.ds->release(TaskId(0), WorkerId(0));
  f.ds->request_batch(TaskId(1), WorkerId(0), Fixture::files({1}), [] {});
  f.sim.run();
  EXPECT_EQ(f.ds->cache().ref_count(FileId(1)), 2u);
}

TEST(DataServer, EvictionUnderCapacityPressure) {
  Fixture f(4);
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2, 3}), [] {});
  f.sim.run();
  f.ds->release(TaskId(0), WorkerId(0));
  f.ds->request_batch(TaskId(1), WorkerId(0), Fixture::files({4, 5, 6}), [] {});
  f.sim.run();
  EXPECT_EQ(f.ds->cache().size(), 4u);
  EXPECT_GT(f.ds->cache().evictions(), 0u);
  // Re-requesting evicted files costs transfers again.
  f.ds->release(TaskId(1), WorkerId(0));
  auto before = f.ds->stats().file_transfers;
  f.ds->request_batch(TaskId(2), WorkerId(0), Fixture::files({1, 2}), [] {});
  f.sim.run();
  EXPECT_GT(f.ds->stats().file_transfers, before);
}

TEST(DataServer, OversizedBatchRejected) {
  Fixture f(2);
  EXPECT_THROW(
      f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2, 3}),
                          [] {}),
      std::logic_error);
}

TEST(DataServer, CancelQueuedBatch) {
  Fixture f;
  bool fired = false;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}), [] {});
  f.ds->request_batch(TaskId(1), WorkerId(1), Fixture::files({3}),
                      [&] { fired = true; });
  EXPECT_TRUE(f.ds->cancel_batch(TaskId(1), WorkerId(1)));
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(f.ds->stats().batches_cancelled, 1u);
  EXPECT_EQ(f.ds->stats().batches_served, 1u);
}

TEST(DataServer, CancelInServiceBatchAbortsFlowAndServesNext) {
  Fixture f;
  bool first_fired = false;
  double second_done = -1;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2, 3}),
                      [&] { first_fired = true; });
  f.ds->request_batch(TaskId(1), WorkerId(1), Fixture::files({4}),
                      [&] { second_done = f.sim.now(); });
  // Cancel mid-fetch of the first batch (at t=1.5 file 2 is in flight).
  f.sim.schedule_in(1.5, [&] {
    EXPECT_TRUE(f.ds->cancel_batch(TaskId(0), WorkerId(0)));
  });
  f.sim.run();
  EXPECT_FALSE(first_fired);
  // File 1 landed before the cancel and stays cached (bytes not wasted)...
  EXPECT_TRUE(f.ds->cache().contains(FileId(1)));
  // ...and unpinned.
  EXPECT_FALSE(f.ds->cache().pinned(FileId(1)));
  // The aborted file 2 never landed.
  EXPECT_FALSE(f.ds->cache().contains(FileId(2)));
  // Batch 2 starts right at the cancel: 1.5 + 1.0.
  EXPECT_NEAR(second_done, 2.5, 1e-9);
}

TEST(DataServer, CancelUnknownBatchReturnsFalse) {
  Fixture f;
  EXPECT_FALSE(f.ds->cancel_batch(TaskId(3), WorkerId(3)));
}

TEST(DataServer, EmptyBatchRejected) {
  Fixture f;
  std::vector<FileId> none;
  EXPECT_THROW(f.ds->request_batch(TaskId(0), WorkerId(0), none, [] {}),
               std::logic_error);
}

TEST(DataServer, ManyQueuedBatchesKeepFifoOrder) {
  Fixture f;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    f.ds->request_batch(TaskId(i), WorkerId(i),
                        Fixture::files({static_cast<unsigned>(10 + i)}),
                        [&order, i] { order.push_back(i); });
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DataServer, ConcurrentExternalInsertOfInFlightFileIsTolerated) {
  // Regression: a proactive replica (or any external writer) lands the
  // same file while the demand fetch is mid-flight. The arrival must not
  // double-insert; the file stays cached and pinned for the batch.
  Fixture f;
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1}), [] {});
  f.sim.schedule_in(0.5, [&] {
    // Mid-transfer: the file appears via another path.
    f.ds->cache().insert(FileId(1));
  });
  f.sim.run();
  EXPECT_TRUE(f.ds->cache().contains(FileId(1)));
  EXPECT_TRUE(f.ds->cache().pinned(FileId(1)));
  EXPECT_EQ(f.ds->stats().file_transfers, 1u);  // bytes still moved
  f.ds->release(TaskId(0), WorkerId(0));
}

TEST(DataServer, TransferListenerFiresPerFetch) {
  Fixture f;
  std::vector<FileId> fetched;
  f.ds->set_transfer_listener([&](FileId file) { fetched.push_back(file); });
  f.ds->request_batch(TaskId(0), WorkerId(0), Fixture::files({1, 2}), [] {});
  f.sim.run();
  f.ds->release(TaskId(0), WorkerId(0));
  EXPECT_EQ(fetched, (std::vector<FileId>{FileId(1), FileId(2)}));
  // Cache hits do not fire the listener.
  f.ds->request_batch(TaskId(1), WorkerId(0), Fixture::files({1}), [] {});
  f.sim.run();
  EXPECT_EQ(fetched.size(), 2u);
}

TEST(DataServer, TransfersGoThroughSharedUplinkTopology) {
  // Data server behind an uplink: fs -- uplink -- gw -- lan -- ds.
  sim::Simulator sim;
  net::Topology topo;
  NodeId fs = topo.add_node("fs");
  NodeId gw = topo.add_node("gw");
  NodeId dsn = topo.add_node("ds");
  topo.add_link(fs, gw, 2e6, 0.0);
  LinkId uplink = topo.add_link(gw, dsn, 1e6, 0.0);
  workload::FileCatalog catalog(10, megabytes(1));
  net::FlowManager flows(sim, topo);
  DataServer ds(SiteId(0), sim, flows, dsn, fs, catalog, 10,
                EvictionPolicy::kLru);
  double done = -1;
  std::vector<FileId> batch{FileId(0), FileId(1)};
  ds.request_batch(TaskId(0), WorkerId(0), batch, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-9);  // bottleneck 1 MB/s
  EXPECT_NEAR(flows.link_bytes(uplink), 2e6, 1);
}

}  // namespace
}  // namespace wcs::storage
