// Tests for the max-min fair flow model, including a brute-force
// progressive-filling oracle on random topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "net/flow_manager.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace wcs::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Topology topo;
  std::unique_ptr<FlowManager> flows;

  void init() { flows = std::make_unique<FlowManager>(sim, topo); }
};

TEST(Flows, SingleFlowTakesBytesOverBandwidthPlusLatency) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.5);  // 1 MB/s, 500 ms
  f.init();
  double done_at = -1;
  f.flows->start_flow(a, b, 2'000'000, [&](FlowId) { done_at = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(done_at, 0.5 + 2.0, 1e-9);
  EXPECT_EQ(f.flows->completed_flows(), 1u);
}

TEST(Flows, ZeroByteFlowCompletesAfterLatency) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.25);
  f.init();
  double done_at = -1;
  f.flows->start_flow(a, b, 0, [&](FlowId) { done_at = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(done_at, 0.25, 1e-9);
}

TEST(Flows, SameNodeTransferIsInstant) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  f.init();
  double done_at = -1;
  f.flows->start_flow(a, a, 1'000'000, [&](FlowId) { done_at = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(done_at, 0.0, 1e-9);
}

TEST(Flows, TwoFlowsShareALinkFairly) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  double t1 = -1, t2 = -1;
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { t1 = f.sim.now(); });
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { t2 = f.sim.now(); });
  f.sim.run();
  // Both share 1 MB/s: each runs at 0.5 MB/s and finishes at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(Flows, ShortFlowFinishingSpeedsUpLongFlow) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  double t_short = -1, t_long = -1;
  f.flows->start_flow(a, b, 500'000, [&](FlowId) { t_short = f.sim.now(); });
  f.flows->start_flow(a, b, 1'500'000, [&](FlowId) { t_long = f.sim.now(); });
  f.sim.run();
  // Shared until t=1 (each moved 0.5 MB); then the long flow gets the full
  // link for its remaining 1 MB: finishes at t=2.
  EXPECT_NEAR(t_short, 1.0, 1e-9);
  EXPECT_NEAR(t_long, 2.0, 1e-9);
}

TEST(Flows, LateArrivalSlowsExistingFlow) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  double t1 = -1;
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { t1 = f.sim.now(); });
  f.sim.schedule_in(0.5, [&] {
    f.flows->start_flow(a, b, 1'000'000, [](FlowId) {});
  });
  f.sim.run();
  // Flow 1: 0.5 MB alone (0.5 s), then 0.5 MB at half rate (1.0 s) -> 1.5 s.
  EXPECT_NEAR(t1, 1.5, 1e-9);
}

TEST(Flows, MaxMinRespectsPerFlowBottlenecks) {
  // Two flows: one crosses the thin link only, one crosses thin+thick.
  // a --thin(1MB/s)-- b --thick(10MB/s)-- c
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  NodeId c = f.topo.add_node("c");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.topo.add_link(b, c, 1e7, 0.0);
  f.init();
  f.flows->start_flow(a, b, 10'000'000, [](FlowId) {});
  f.flows->start_flow(a, c, 10'000'000, [](FlowId) {});
  // The first two events are the t=0 activations (completions land later).
  f.sim.step();
  f.sim.step();
  // Both constrained by the thin link: 0.5 MB/s each.
  EXPECT_NEAR(f.flows->flow_rate(FlowId(0)), 0.5e6, 1);
  EXPECT_NEAR(f.flows->flow_rate(FlowId(1)), 0.5e6, 1);
}

TEST(Flows, UnconstrainedFlowGetsLeftoverBandwidth) {
  // f0: a->b over thin 1 MB/s. f1: c->b over thick 10 MB/s. Disjoint.
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  NodeId c = f.topo.add_node("c");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.topo.add_link(c, b, 1e7, 0.0);
  f.init();
  double t0 = -1, t1 = -1;
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { t0 = f.sim.now(); });
  f.flows->start_flow(c, b, 10'000'000, [&](FlowId) { t1 = f.sim.now(); });
  f.sim.run();
  EXPECT_NEAR(t0, 1.0, 1e-9);
  EXPECT_NEAR(t1, 1.0, 1e-9);
}

TEST(Flows, CancelStopsCallbackAndFreesBandwidth) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  bool cancelled_fired = false;
  double t1 = -1;
  FlowId victim =
      f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { cancelled_fired = true; });
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { t1 = f.sim.now(); });
  f.sim.schedule_in(1.0, [&] { EXPECT_TRUE(f.flows->cancel(victim)); });
  f.sim.run();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_EQ(f.flows->cancelled_flows(), 1u);
  // Survivor: 0.5 MB by t=1 shared, remaining 0.5 MB alone -> t=1.5.
  EXPECT_NEAR(t1, 1.5, 1e-9);
}

TEST(Flows, CancelCompletedFlowReturnsFalse) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  FlowId id = f.flows->start_flow(a, b, 1000, [](FlowId) {});
  f.sim.run();
  EXPECT_FALSE(f.flows->cancel(id));
}

TEST(Flows, LinkBytesAccounting) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  NodeId c = f.topo.add_node("c");
  LinkId l0 = f.topo.add_link(a, b, 1e6, 0.0);
  LinkId l1 = f.topo.add_link(b, c, 1e6, 0.0);
  f.init();
  f.flows->start_flow(a, c, 3'000'000, [](FlowId) {});
  f.flows->start_flow(a, b, 1'000'000, [](FlowId) {});
  f.sim.run();
  EXPECT_NEAR(f.flows->link_bytes(l0), 4e6, 1);
  EXPECT_NEAR(f.flows->link_bytes(l1), 3e6, 1);
}

TEST(Flows, CompletionOrderMatchesSizesOnSharedLink) {
  Fixture f;
  NodeId a = f.topo.add_node("a");
  NodeId b = f.topo.add_node("b");
  f.topo.add_link(a, b, 1e6, 0.0);
  f.init();
  std::vector<int> order;
  f.flows->start_flow(a, b, 3'000'000, [&](FlowId) { order.push_back(3); });
  f.flows->start_flow(a, b, 1'000'000, [&](FlowId) { order.push_back(1); });
  f.flows->start_flow(a, b, 2'000'000, [&](FlowId) { order.push_back(2); });
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- Property test: allocation matches a brute-force max-min oracle ------

// Independent progressive-filling implementation over explicit sets.
std::vector<double> oracle_max_min(
    const std::vector<double>& link_caps,
    const std::vector<std::vector<std::size_t>>& flow_routes) {
  std::vector<double> caps = link_caps;
  std::vector<double> rates(flow_routes.size(), -1);
  std::vector<bool> fixed(flow_routes.size(), false);
  for (;;) {
    // count unfixed flows per link
    std::vector<int> count(caps.size(), 0);
    for (std::size_t i = 0; i < flow_routes.size(); ++i)
      if (!fixed[i])
        for (std::size_t l : flow_routes[i]) ++count[l];
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_link = SIZE_MAX;
    for (std::size_t l = 0; l < caps.size(); ++l)
      if (count[l] > 0 && caps[l] / count[l] < best) {
        best = caps[l] / count[l];
        best_link = l;
      }
    if (best_link == SIZE_MAX) break;
    for (std::size_t i = 0; i < flow_routes.size(); ++i) {
      if (fixed[i]) continue;
      if (std::find(flow_routes[i].begin(), flow_routes[i].end(),
                    best_link) == flow_routes[i].end())
        continue;
      fixed[i] = true;
      rates[i] = best;
      for (std::size_t l : flow_routes[i]) caps[l] -= best;
    }
  }
  return rates;
}

class FlowMaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowMaxMinProperty, MatchesOracleOnRandomStar) {
  // Star topology: hub h, leaves l0..l{k-1}, random capacities; random
  // leaf-to-leaf flows (each crosses two links).
  Rng rng(GetParam());
  Fixture f;
  NodeId hub = f.topo.add_node("hub");
  const int kLeaves = 5;
  std::vector<NodeId> leaves;
  std::vector<double> caps;
  for (int i = 0; i < kLeaves; ++i) {
    leaves.push_back(f.topo.add_node("leaf"));
    double cap = rng.uniform_real(1e5, 1e7);
    caps.push_back(cap);
    f.topo.add_link(hub, leaves.back(), cap, 0.0);
  }
  f.init();

  const int kFlows = 8;
  std::vector<std::vector<std::size_t>> routes;
  std::vector<FlowId> ids;
  for (int i = 0; i < kFlows; ++i) {
    auto src = rng.index(kLeaves);
    auto dst = rng.index(kLeaves);
    while (dst == src) dst = rng.index(kLeaves);
    routes.push_back({src, dst});
    ids.push_back(f.flows->start_flow(leaves[src], leaves[dst], 1'000'000'000,
                                      [](FlowId) {}));
  }
  // Run exactly the kFlows activation events (all at t=0, scheduled before
  // any completion).
  for (int i = 0; i < kFlows; ++i) f.sim.step();

  std::vector<double> expected = oracle_max_min(caps, routes);
  for (int i = 0; i < kFlows; ++i)
    EXPECT_NEAR(f.flows->flow_rate(ids[i]), expected[i],
                expected[i] * 1e-9 + 1e-6)
        << "flow " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowMaxMinProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace wcs::net
