// Block-level data plane: BlockMap layout laws, FileCache block-mode
// refcount accounting, the whole-file/block-mode equivalence at content
// overlap 0 (mirrored churn over 7 seeds), the block-store audit
// checker, and an end-to-end dedup run (docs/data-plane.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "audit/checkers.h"
#include "common/rng.h"
#include "common/units.h"
#include "grid/experiment.h"
#include "storage/block_store.h"
#include "storage/file_cache.h"
#include "workload/coadd.h"

namespace wcs::storage {
namespace {

// 24 MB files on a 1 MB grid at overlap 0.5: n = 24, stride = 12, each
// file shares exactly 12 blocks with each adjacent neighbour and none
// with anything farther (neighbour span 1).
workload::FileCatalog uniform_catalog(std::size_t files = 40,
                                      double mb = 24.0) {
  return workload::FileCatalog(files, megabytes(mb));
}

BlockStoreParams overlap_params(double overlap) {
  BlockStoreParams p;
  p.block_size = megabytes(1.0);
  p.content_overlap = overlap;
  return p;
}

TEST(BlockMapLayout, DisjointUniformExtents) {
  auto catalog = uniform_catalog(10, 25.0);
  BlockMap map(catalog, overlap_params(0.0));
  EXPECT_FALSE(map.shared());
  EXPECT_EQ(map.num_files(), 10u);
  EXPECT_EQ(map.blocks(FileId(0)), 25u);
  EXPECT_EQ(map.num_blocks(), 250u);
  EXPECT_EQ(map.neighbour_span(), 0u);
  for (std::uint32_t f = 0; f < 10; ++f) {
    const BlockMap::Extent e = map.extent(FileId(f));
    EXPECT_EQ(e.first, static_cast<std::uint64_t>(f) * 25u);
    EXPECT_EQ(e.count, 25u);
    EXPECT_EQ(map.file_bytes(FileId(f)), catalog.size(FileId(f)));
  }
}

TEST(BlockMapLayout, DisjointTailBlockCarriesTheRemainder) {
  // 25.5 MB files: 26 blocks, the last holding 0.5 MB — file_bytes must
  // stay EXACT so whole-file and block transfers agree byte for byte.
  auto catalog = uniform_catalog(4, 25.5);
  BlockMap map(catalog, overlap_params(0.0));
  EXPECT_EQ(map.blocks(FileId(0)), 26u);
  EXPECT_EQ(map.block_bytes(FileId(0), 24), megabytes(1.0));
  EXPECT_EQ(map.block_bytes(FileId(0), 25), megabytes(0.5));
  EXPECT_EQ(map.file_bytes(FileId(0)), catalog.size(FileId(0)));
}

TEST(BlockMapLayout, OverlappingExtentsSlideByStride) {
  auto catalog = uniform_catalog(10, 24.0);
  BlockMap map(catalog, overlap_params(0.5));
  EXPECT_TRUE(map.shared());
  EXPECT_EQ(map.stride(), 12u);
  EXPECT_EQ(map.neighbour_span(), 1u);
  EXPECT_EQ(map.extent(FileId(0)).first, 0u);
  EXPECT_EQ(map.extent(FileId(1)).first, 12u);
  EXPECT_EQ(map.extent(FileId(2)).first, 24u);
  // 9 strides + one full extent.
  EXPECT_EQ(map.num_blocks(), 9u * 12u + 24u);
  // Shared mode rounds content to block granularity: every block is a
  // full block_size.
  EXPECT_EQ(map.file_bytes(FileId(3)), megabytes(24.0));
  EXPECT_EQ(map.block_bytes(FileId(3), 23), megabytes(1.0));
}

TEST(BlockMapLayout, HeterogeneousCatalogGetsDisjointExtents) {
  workload::FileCatalog catalog;
  catalog.add_file(megabytes(2.0));
  catalog.add_file(megabytes(0.5));
  catalog.add_file(megabytes(3.5));
  // Overlap is a uniform sliding-window notion; heterogeneous catalogs
  // must come out disjoint even when it is set.
  BlockMap map(catalog, overlap_params(0.5));
  EXPECT_FALSE(map.shared());
  EXPECT_EQ(map.extent(FileId(0)).first, 0u);
  EXPECT_EQ(map.extent(FileId(0)).count, 2u);
  EXPECT_EQ(map.extent(FileId(1)).first, 2u);
  EXPECT_EQ(map.extent(FileId(1)).count, 1u);
  EXPECT_EQ(map.extent(FileId(2)).first, 3u);
  EXPECT_EQ(map.extent(FileId(2)).count, 4u);
  EXPECT_EQ(map.num_blocks(), 7u);
  for (std::uint32_t f = 0; f < 3; ++f)
    EXPECT_EQ(map.file_bytes(FileId(f)), catalog.size(FileId(f)));
}

TEST(BlockMapLayout, ZeroByteFileOccupiesOneEmptyBlock) {
  workload::FileCatalog catalog;
  catalog.add_file(megabytes(1.0));
  catalog.add_file(0);
  BlockMap map(catalog, overlap_params(0.0));
  EXPECT_EQ(map.extent(FileId(1)).count, 1u);
  EXPECT_EQ(map.file_bytes(FileId(1)), 0u);
  EXPECT_EQ(map.block_bytes(FileId(1), 0), 0u);
}

TEST(FileCacheBlocks, SharedBlocksAreHeldOnceAndEvictionFreesExclusive) {
  auto catalog = uniform_catalog();
  BlockMap map(catalog, overlap_params(0.5));
  FileCache cache(2, EvictionPolicy::kLru);
  cache.attach_block_store(&map);
  ASSERT_TRUE(cache.block_mode());
  EXPECT_EQ(cache.capacity_blocks(), 48u);  // 2 files x 24 blocks

  cache.insert(FileId(0));
  EXPECT_EQ(cache.physical_blocks(), 24u);
  cache.insert(FileId(1));  // shares 12 blocks with f0
  EXPECT_EQ(cache.physical_blocks(), 36u);
  // f2's exclusive tail still fits: THREE files resident in a cache
  // whose whole-file capacity is two — the dedup payoff.
  cache.insert(FileId(2));
  EXPECT_EQ(cache.physical_blocks(), 48u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // f3 needs 12 exclusive blocks; evicting LRU-head f0 frees only ITS
  // exclusive 12 (the 12 shared with f1 stay behind).
  cache.insert(FileId(3));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.contains(FileId(0)));
  EXPECT_TRUE(cache.contains(FileId(1)));
  EXPECT_EQ(cache.physical_blocks(), 48u);
}

TEST(FileCacheBlocks, MissingBytesCountsOnlyUncoveredBlocks) {
  auto catalog = uniform_catalog();
  BlockMap map(catalog, overlap_params(0.5));
  FileCache cache(4, EvictionPolicy::kLru);
  cache.attach_block_store(&map);

  EXPECT_EQ(cache.missing_bytes(FileId(2)), megabytes(24.0));
  cache.insert(FileId(1));
  // f2 shares 12 of its 24 blocks with resident f1.
  EXPECT_EQ(cache.missing_bytes(FileId(2)), megabytes(12.0));
  EXPECT_EQ(cache.missing_bytes(FileId(0)), megabytes(12.0));
  // Distance 2: no sharing.
  EXPECT_EQ(cache.missing_bytes(FileId(3)), megabytes(24.0));
  cache.insert(FileId(3));
  // f2 now covered from both sides: nothing to move.
  EXPECT_EQ(cache.missing_bytes(FileId(2)), 0u);
  EXPECT_EQ(cache.missing_bytes(FileId(1)), 0u);  // resident
  EXPECT_EQ(cache.file_bytes(FileId(2)), megabytes(24.0));
}

TEST(FileCacheBlocks, PinnedBlockCounterTracksPinTransitions) {
  auto catalog = uniform_catalog();
  BlockMap map(catalog, overlap_params(0.5));
  FileCache cache(4, EvictionPolicy::kLru);
  cache.attach_block_store(&map);

  cache.insert(FileId(0));
  cache.insert(FileId(1));
  EXPECT_EQ(cache.pinned_blocks(), 0u);
  cache.pin(FileId(0));
  EXPECT_EQ(cache.pinned_blocks(), 24u);
  cache.pin(FileId(1));  // 12 of f1's blocks already pinned via f0
  EXPECT_EQ(cache.pinned_blocks(), 36u);
  cache.pin(FileId(1));  // nested pin: no transition
  EXPECT_EQ(cache.pinned_blocks(), 36u);
  cache.unpin(FileId(1));
  EXPECT_EQ(cache.pinned_blocks(), 36u);
  cache.unpin(FileId(1));
  EXPECT_EQ(cache.pinned_blocks(), 24u);
  cache.unpin(FileId(0));
  EXPECT_EQ(cache.pinned_blocks(), 0u);
}

TEST(FileCacheBlocks, InsertRoomIsExactAgainstPinnedCoverage) {
  auto catalog = uniform_catalog();
  BlockMap map(catalog, overlap_params(0.5));
  FileCache cache(2, EvictionPolicy::kLru);
  cache.attach_block_store(&map);

  cache.insert(FileId(0));
  cache.pin(FileId(0));
  cache.insert(FileId(1));
  cache.pin(FileId(1));
  EXPECT_EQ(cache.pinned_blocks(), 36u);
  // f2 shares 12 pinned blocks with f1: worst case 36 + 12 = 48 <= 48.
  EXPECT_TRUE(cache.has_insert_room(FileId(2)));
  EXPECT_TRUE(cache.try_insert(FileId(2)));
  // f4 shares nothing pinned: 48 + 24 > 48 even after evicting f2.
  EXPECT_FALSE(cache.has_insert_room(FileId(4)));
  EXPECT_FALSE(cache.try_insert(FileId(4)));
  EXPECT_TRUE(cache.contains(FileId(2)));  // failed try left state alone
}

TEST(FileCacheBlocks, AuditSnapshotMatchesIncrementalCounters) {
  auto catalog = uniform_catalog();
  BlockMap map(catalog, overlap_params(0.5));
  FileCache cache(3, EvictionPolicy::kLru);
  cache.attach_block_store(&map);
  Rng rng(99);
  std::vector<int> pins(catalog.num_files(), 0);
  for (int op = 0; op < 4000; ++op) {
    const FileId f(
        static_cast<FileId::underlying_type>(rng.index(catalog.num_files())));
    switch (rng.index(4)) {
      case 0:
        if (!cache.contains(f)) (void)cache.try_insert(f);
        break;
      case 1:
        if (cache.contains(f)) cache.record_access(f);
        break;
      case 2:
        if (cache.contains(f) && pins[f.value()] < 3) {
          cache.pin(f);
          ++pins[f.value()];
        }
        break;
      default:
        if (pins[f.value()] > 0) {
          cache.unpin(f);
          --pins[f.value()];
        }
        break;
    }
    if (op % 250 == 0) {
      const audit::BlockStoreAuditSnapshot snap =
          cache.block_audit_snapshot("churn");
      EXPECT_EQ(snap.physical_blocks, snap.recount_physical);
      EXPECT_EQ(snap.pinned_blocks, snap.recount_pinned);
      std::vector<audit::Violation> violations;
      audit::check_block_store(snap, violations);
      EXPECT_TRUE(violations.empty());
    }
  }
}

// The equivalence gate behind the block-mode default: at content overlap
// 0 on a uniform catalog, a block-mode cache and a whole-file cache make
// IDENTICAL decisions under arbitrary insert/access/pin/unpin churn —
// same residents, same victims in the same order, same room answers.
TEST(FileCacheBlocks, MirroredChurnMatchesWholeFileAtOverlapZero) {
  auto catalog = uniform_catalog(60, 25.0);
  BlockMap map(catalog, overlap_params(0.0));
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    for (auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFifo,
                        EvictionPolicy::kMinRef}) {
      FileCache whole(5, policy);
      FileCache block(5, policy);
      block.attach_block_store(&map);
      std::vector<FileId> whole_victims;
      std::vector<FileId> block_victims;
      whole.set_listener([&](CacheEvent e, FileId f) {
        if (e == CacheEvent::kEvicted) whole_victims.push_back(f);
      });
      block.set_listener([&](CacheEvent e, FileId f) {
        if (e == CacheEvent::kEvicted) block_victims.push_back(f);
      });

      Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(policy));
      std::vector<int> pins(catalog.num_files(), 0);
      for (int op = 0; op < 3000; ++op) {
        const FileId f(static_cast<FileId::underlying_type>(
            rng.index(catalog.num_files())));
        ASSERT_EQ(whole.contains(f), block.contains(f));
        ASSERT_EQ(whole.has_insert_room(f), block.has_insert_room(f));
        switch (rng.index(4)) {
          case 0:
            if (!whole.contains(f)) {
              ASSERT_EQ(whole.try_insert(f), block.try_insert(f));
            }
            break;
          case 1:
            if (whole.contains(f)) {
              whole.record_access(f);
              block.record_access(f);
            }
            break;
          case 2:
            if (whole.contains(f) && pins[f.value()] < 2) {
              whole.pin(f);
              block.pin(f);
              ++pins[f.value()];
            }
            break;
          default:
            if (pins[f.value()] > 0) {
              whole.unpin(f);
              block.unpin(f);
              --pins[f.value()];
            }
            break;
        }
      }
      EXPECT_EQ(whole.contents(), block.contents());
      EXPECT_EQ(whole.evictions(), block.evictions());
      EXPECT_EQ(whole_victims, block_victims);
      // Disjoint extents: the block books must read exactly
      // files x blocks-per-file.
      EXPECT_EQ(block.physical_blocks(), block.size() * 25u);
      const audit::BlockStoreAuditSnapshot snap =
          block.block_audit_snapshot("mirror");
      std::vector<audit::Violation> violations;
      audit::check_block_store(snap, violations);
      EXPECT_TRUE(violations.empty());
    }
  }
}

TEST(BlockStoreIntegration, DedupRunAuditsCleanAndSavesBytes) {
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  cp.seed = 20260808;
  auto job = workload::generate_coadd(cp);

  grid::GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 3000;
  c.audit = true;  // block-store checker sweeps the live run
  ASSERT_TRUE(c.block_store.has_value());
  c.block_store->content_overlap = 0.5;

  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  const auto r = grid::run_once(c, job, spec, /*seed=*/7);
  EXPECT_EQ(r.tasks_completed, 200u);
  EXPECT_GT(r.total_bytes_saved(), 0.0);
  EXPECT_GT(r.dedup_ratio(), 1.0);
}

TEST(BlockStoreIntegration, OverlapZeroRunMatchesWholeFileByteForByte) {
  workload::CoaddParams cp;
  cp.num_tasks = 150;
  cp.seed = 20260808;
  auto job = workload::generate_coadd(cp);

  grid::GridConfig block;
  block.tiers.num_sites = 4;
  block.tiers.workers_per_site = 2;
  block.capacity_files = 3000;
  grid::GridConfig whole = block;
  whole.block_store.reset();

  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kCombined;
  const auto rb = grid::run_once(block, job, spec, /*seed=*/3);
  const auto rw = grid::run_once(whole, job, spec, /*seed=*/3);
  EXPECT_EQ(rb.makespan_s, rw.makespan_s);
  EXPECT_EQ(rb.events_executed, rw.events_executed);
  EXPECT_EQ(rb.total_file_transfers(), rw.total_file_transfers());
  EXPECT_EQ(rb.total_bytes_transferred(), rw.total_bytes_transferred());
  EXPECT_EQ(rb.total_bytes_saved(), 0.0);
  EXPECT_EQ(rb.dedup_ratio(), 1.0);
}

}  // namespace
}  // namespace wcs::storage
