// File-path-based trace I/O (the stream variants are covered in
// test_workload) plus error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "grid/experiment.h"
#include "workload/coadd.h"
#include "workload/trace.h"

namespace wcs::workload {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wcs_trace_test_" + std::to_string(::getpid()) + ".trace");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::filesystem::path path_;
};

TEST_F(TraceFileTest, RoundTripThroughDisk) {
  CoaddParams p;
  p.num_tasks = 50;
  Job a = generate_coadd(p);
  save_job(a, path_.string());
  Job b = load_job(path_.string());
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    EXPECT_TRUE(std::ranges::equal(a.task(id).files, b.task(id).files));
  }
}

TEST_F(TraceFileTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_job((path_ / "nope").string()), std::logic_error);
}

TEST_F(TraceFileTest, SaveToBadPathThrows) {
  EXPECT_THROW(save_job(Job{}, "/nonexistent-dir-xyz/file.trace"),
               std::logic_error);
}

TEST_F(TraceFileTest, RejectsTaskWithUndeclaredFile) {
  {
    std::ofstream out(path_);
    out << "job bad\nfiles 1\nfilesize 0 100\ntask 0 1.0 0 5\n";
  }
  EXPECT_THROW((void)load_job(path_.string()), std::logic_error);
}

TEST_F(TraceFileTest, RejectsZeroSizeFile) {
  {
    std::ofstream out(path_);
    out << "job bad\nfiles 1\ntask 0 1.0 0\n";  // filesize line missing
  }
  EXPECT_THROW((void)load_job(path_.string()), std::logic_error);
}

TEST_F(TraceFileTest, LargeJobRoundTripsExactly) {
  CoaddParams p;
  p.num_tasks = 500;
  Job a = generate_coadd(p);
  save_job(a, path_.string());
  Job b = load_job(path_.string());
  JobStats sa = compute_stats(a);
  JobStats sb = compute_stats(b);
  EXPECT_EQ(sa.distinct_files, sb.distinct_files);
  EXPECT_DOUBLE_EQ(sa.avg_files_per_task, sb.avg_files_per_task);
  EXPECT_EQ(a.catalog.total_bytes(), b.catalog.total_bytes());
}

TEST_F(TraceFileTest, ReloadedJobSimulatesIdentically) {
  // The serialized workload is a faithful substitute for the generated
  // one: running either through the same fixed-seed simulation must
  // produce the same result, bit for bit (mflop and byte values are
  // written at round-trip precision).
  CoaddParams p;
  p.num_tasks = 80;
  p.seed = 99;
  Job a = generate_coadd(p);
  save_job(a, path_.string());
  Job b = load_job(path_.string());

  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 400;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  spec.choose_n = 2;
  auto ra = grid::run_once(c, a, spec, 5);
  auto rb = grid::run_once(c, b, spec, 5);

  EXPECT_EQ(ra.makespan_s, rb.makespan_s);
  EXPECT_EQ(ra.events_executed, rb.events_executed);
  EXPECT_EQ(ra.assignments, rb.assignments);
  EXPECT_EQ(ra.total_file_transfers(), rb.total_file_transfers());
  EXPECT_EQ(ra.total_bytes_transferred(), rb.total_bytes_transferred());
  EXPECT_EQ(ra.total_cache_hits(), rb.total_cache_hits());
  EXPECT_EQ(ra.total_evictions(), rb.total_evictions());
}

}  // namespace
}  // namespace wcs::workload
