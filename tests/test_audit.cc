// Invariant-auditor tests.
//
// The checkers are pure functions over snapshot structs, so every
// detection test takes a healthy snapshot, injects one violation, and
// asserts the checker fires with a report naming the broken law — no
// live component needs to be corrupted. The integration tests then run
// real simulations with the auditor on and assert (a) clean runs stay
// clean and (b) audited results are identical to unaudited ones.
#include <gtest/gtest.h>

#include <cstdlib>

#include "audit/checkers.h"
#include "audit/invariant_auditor.h"
#include "grid/grid_simulation.h"
#include "sched/factory.h"
#include "sched/worker_centric.h"
#include "storage/file_cache.h"
#include "fake_engine.h"
#include "workload/job.h"

namespace wcs::audit {
namespace {

using sched::testing::FakeEngine;
using sched::testing::make_job;

std::vector<Violation> run_checker(
    const std::function<void(std::vector<Violation>&)>& fn) {
  std::vector<Violation> out;
  fn(out);
  return out;
}

bool mentions(const std::vector<Violation>& v, const std::string& needle) {
  for (const Violation& x : v)
    if (x.message.find(needle) != std::string::npos) return true;
  return false;
}

// --- flow conservation --------------------------------------------------

FlowAuditSnapshot healthy_flows() {
  FlowAuditSnapshot s;
  s.links.push_back(LinkUsage{"uplink0", 2e6, 1.5e6, 3});
  s.flows.push_back(FlowProgress{1, 25e6, 10e6, 1.5e6, true});
  s.bytes_started = 100e6;
  s.bytes_delivered = 75e6;
  s.flows_completed = 3;
  return s;
}

TEST(FlowConservation, HealthySnapshotIsClean) {
  auto v = run_checker(
      [](auto& out) { check_flow_conservation(healthy_flows(), out); });
  EXPECT_TRUE(v.empty());
}

TEST(FlowConservation, DetectsOversubscribedLink) {
  FlowAuditSnapshot s = healthy_flows();
  s.links[0].allocated_bps = s.links[0].capacity_bps * 1.01;
  auto v =
      run_checker([&](auto& out) { check_flow_conservation(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "flow-conservation");
  EXPECT_TRUE(mentions(v, "oversubscribed"));
}

TEST(FlowConservation, AllowsMaxMinRoundingDust) {
  FlowAuditSnapshot s = healthy_flows();
  s.links[0].allocated_bps = s.links[0].capacity_bps * (1 + 1e-9);
  auto v =
      run_checker([&](auto& out) { check_flow_conservation(s, out); });
  EXPECT_TRUE(v.empty());
}

TEST(FlowConservation, DetectsBrokenByteAccounting) {
  FlowAuditSnapshot s = healthy_flows();
  s.flows[0].remaining_bytes = s.flows[0].total_bytes + 10;
  auto v =
      run_checker([&](auto& out) { check_flow_conservation(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "byte accounting"));
}

TEST(FlowConservation, DetectsLedgerImbalance) {
  FlowAuditSnapshot s = healthy_flows();
  s.bytes_delivered = s.bytes_started + 1;  // delivered more than started
  auto v =
      run_checker([&](auto& out) { check_flow_conservation(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "out of balance"));
}

// --- cache coherence ----------------------------------------------------

TEST(CacheCoherence, DetectsOverCapacity) {
  CacheAuditSnapshot s;
  s.label = "site 3 data server";
  s.capacity = 100;
  s.occupancy = 101;
  auto v = run_checker([&](auto& out) { check_cache_coherence(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "cache-coherence");
  EXPECT_TRUE(mentions(v, "over capacity"));
  EXPECT_TRUE(mentions(v, "site 3 data server"));
}

TEST(CacheCoherence, DetectsPhantomPins) {
  CacheAuditSnapshot s;
  s.capacity = 100;
  s.occupancy = 2;
  s.pinned = 3;
  auto v = run_checker([&](auto& out) { check_cache_coherence(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "pins"));
}

TEST(CacheCoherence, ForwardsStructuralDefects) {
  CacheAuditSnapshot s;
  s.capacity = 100;
  s.occupancy = 10;
  s.structural.push_back("order list misses file 7");
  auto v = run_checker([&](auto& out) { check_cache_coherence(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "eviction structure unsound"));
}

// --- block store --------------------------------------------------------

TEST(BlockStore, DetectsCounterDriftFromRecount) {
  BlockStoreAuditSnapshot s;
  s.label = "site 2 block store";
  s.capacity_blocks = 100;
  s.physical_blocks = 50;
  s.recount_physical = 48;  // incremental counter drifted
  s.file_block_refs = 60;
  auto v = run_checker([&](auto& out) { check_block_store(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "block-store");
  EXPECT_TRUE(mentions(v, "extent-union recount"));
  EXPECT_TRUE(mentions(v, "site 2 block store"));
}

TEST(BlockStore, DetectsPinnedExceedingPhysicalAndOverCapacity) {
  BlockStoreAuditSnapshot s;
  s.capacity_blocks = 40;
  s.physical_blocks = 50;
  s.recount_physical = 50;
  s.pinned_blocks = 60;
  s.recount_pinned = 60;
  s.file_block_refs = 50;
  auto v = run_checker([&](auto& out) { check_block_store(s, out); });
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(mentions(v, "are physical"));
  EXPECT_TRUE(mentions(v, "over capacity"));
}

TEST(BlockStore, DetectsBrokenRefcountBooks) {
  BlockStoreAuditSnapshot s;
  s.capacity_blocks = 100;
  s.physical_blocks = 50;
  s.recount_physical = 50;
  s.file_block_refs = 40;  // union larger than the per-file sum
  auto v = run_checker([&](auto& out) { check_block_store(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "refcount books broken"));
}

TEST(BlockStore, ForwardsStructuralDefects) {
  BlockStoreAuditSnapshot s;
  s.capacity_blocks = 100;
  s.structural.push_back("extent of file 3 out of range");
  auto v = run_checker([&](auto& out) { check_block_store(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "page books unsound"));
}

TEST(CacheCoherence, LiveCacheSnapshotIsClean) {
  for (auto policy :
       {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
        storage::EvictionPolicy::kMinRef}) {
    storage::FileCache cache(3, policy);
    for (unsigned f = 0; f < 5; ++f) {  // exercises eviction
      cache.insert(FileId(f));
      cache.record_access(FileId(f));
    }
    cache.pin(FileId(4));
    CacheAuditSnapshot s = cache.audit_snapshot("test cache");
    EXPECT_EQ(s.occupancy, 3u);
    EXPECT_EQ(s.capacity, 3u);
    EXPECT_EQ(s.pinned, 1u);
    EXPECT_TRUE(s.structural.empty());
    auto v =
        run_checker([&](auto& out) { check_cache_coherence(s, out); });
    EXPECT_TRUE(v.empty());
    cache.unpin(FileId(4));
  }
}

// --- index coherence ----------------------------------------------------

TEST(IndexCoherence, DetectsRefDrift) {
  IndexTotalsSnapshot s;
  s.label = "site 0";
  s.incremental_ref = 41;
  s.scanned_ref = 42;
  s.incremental_rest = s.scanned_rest = 1.5;
  auto v = run_checker([&](auto& out) { check_index_coherence(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "index-coherence");
  EXPECT_TRUE(mentions(v, "totalRef"));
}

TEST(IndexCoherence, DetectsRestDrift) {
  IndexTotalsSnapshot s;
  s.incremental_ref = s.scanned_ref = 42;
  s.incremental_rest = 1.5;
  s.scanned_rest = 1.5001;
  auto v = run_checker([&](auto& out) { check_index_coherence(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "totalRest"));
}

TEST(IndexCoherence, AllowsSummationOrderDust) {
  IndexTotalsSnapshot s;
  s.incremental_ref = s.scanned_ref = 42;
  s.incremental_rest = 1.5;
  s.scanned_rest = 1.5 * (1 + 1e-12);
  auto v = run_checker([&](auto& out) { check_index_coherence(s, out); });
  EXPECT_TRUE(v.empty());
}

// --- task lifecycle -----------------------------------------------------

TaskLifecycleSnapshot healthy_lifecycle() {
  TaskLifecycleSnapshot s;
  s.num_tasks = 4;
  s.completions = {1, 1, 0, 1};
  s.completed_count = 3;
  return s;
}

TEST(TaskLifecycle, HealthyMidRunSnapshotIsClean) {
  auto v = run_checker(
      [](auto& out) { check_task_lifecycle(healthy_lifecycle(), out); });
  EXPECT_TRUE(v.empty());
}

TEST(TaskLifecycle, DetectsDoubleCompletion) {
  TaskLifecycleSnapshot s = healthy_lifecycle();
  s.completions[1] = 2;
  s.completed_count = 4;
  auto v = run_checker([&](auto& out) { check_task_lifecycle(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "task-lifecycle");
  EXPECT_TRUE(mentions(v, "completed 2 times"));
}

TEST(TaskLifecycle, DetectsLostTaskAtDrain) {
  TaskLifecycleSnapshot s = healthy_lifecycle();
  s.at_drain = true;  // task 2 never completed
  auto v = run_checker([&](auto& out) { check_task_lifecycle(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "lost at drain"));
}

TEST(TaskLifecycle, DetectsCounterDrift) {
  TaskLifecycleSnapshot s = healthy_lifecycle();
  s.completed_count = 2;  // ledger says 3
  auto v = run_checker([&](auto& out) { check_task_lifecycle(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "observed completions"));
}

TEST(TaskLifecycle, ForwardsPlacementDefects) {
  TaskLifecycleSnapshot s = healthy_lifecycle();
  s.placement_defects.push_back("task 9 is placed on worker 1 but ...");
  auto v = run_checker([&](auto& out) { check_task_lifecycle(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "task-lifecycle");
}

// --- event kernel -------------------------------------------------------

EventKernelSnapshot healthy_kernel() {
  EventKernelSnapshot s;
  s.now = 120;
  s.previous_now = 60;
  s.live_count = s.recount_live = 5;
  s.recount_cancelled = 2;
  s.recount_fired = 93;
  s.scheduled_total = 100;
  return s;
}

TEST(EventKernel, HealthySnapshotIsClean) {
  auto v = run_checker(
      [](auto& out) { check_event_kernel(healthy_kernel(), out); });
  EXPECT_TRUE(v.empty());
}

TEST(EventKernel, DetectsTimeRunningBackwards) {
  EventKernelSnapshot s = healthy_kernel();
  s.now = s.previous_now - 1;
  auto v = run_checker([&](auto& out) { check_event_kernel(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "event-kernel");
  EXPECT_TRUE(mentions(v, "backwards"));
}

TEST(EventKernel, DetectsLiveCounterDrift) {
  EventKernelSnapshot s = healthy_kernel();
  s.live_count = s.recount_live + 1;
  auto v = run_checker([&](auto& out) { check_event_kernel(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "lazy-deletion"));
}

TEST(EventKernel, DetectsUnaccountedEvents) {
  EventKernelSnapshot s = healthy_kernel();
  s.scheduled_total += 1;
  auto v = run_checker([&](auto& out) { check_event_kernel(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "unaccounted"));
}

// --- results ledger -----------------------------------------------------

ResultsLedgerSnapshot healthy_ledger() {
  ResultsLedgerSnapshot s;
  s.makespan_s = s.max_completion_s = 321.5;
  s.tasks_completed = s.num_tasks = 10;
  s.reported_bytes = s.delivered_bytes = 250e6;
  return s;
}

TEST(ResultsLedger, HealthySnapshotIsClean) {
  auto v = run_checker(
      [](auto& out) { check_results_ledger(healthy_ledger(), out); });
  EXPECT_TRUE(v.empty());
}

TEST(ResultsLedger, DetectsMakespanMismatch) {
  ResultsLedgerSnapshot s = healthy_ledger();
  s.max_completion_s += 0.5;
  auto v = run_checker([&](auto& out) { check_results_ledger(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "results-ledger");
  EXPECT_TRUE(mentions(v, "makespan"));
}

TEST(ResultsLedger, DetectsByteDivergence) {
  ResultsLedgerSnapshot s = healthy_ledger();
  s.reported_bytes += 1e6;  // a whole file unaccounted
  auto v = run_checker([&](auto& out) { check_results_ledger(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "diverge"));
}

// --- memory layout ------------------------------------------------------

MemoryLayoutSnapshot healthy_memory() {
  MemoryLayoutSnapshot s;
  s.label = "test";
  s.interner_symbols = 3;
  ArenaAccounting a;
  a.label = "flow-table arena";
  a.total_allocations = 1000;
  a.live_allocations = 40;
  a.freelist_hits = 900;
  a.large_allocations = 4;
  a.large_live = 1;
  a.pages = 2;
  a.page_bytes = 64 * 1024;
  s.arenas.push_back(a);
  return s;
}

TEST(MemoryLayout, HealthySnapshotIsClean) {
  auto v = run_checker(
      [](auto& out) { check_memory_layout(healthy_memory(), out); });
  EXPECT_TRUE(v.empty());
}

TEST(MemoryLayout, ForwardsInternerDefects) {
  MemoryLayoutSnapshot s = healthy_memory();
  s.interner_defects.push_back("interner index entry does not round-trip");
  auto v = run_checker([&](auto& out) { check_memory_layout(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].checker, "memory-layout");
  EXPECT_TRUE(mentions(v, "round-trip"));
}

TEST(MemoryLayout, ForwardsTableDefects) {
  MemoryLayoutSnapshot s = healthy_memory();
  s.table_defects.push_back(
      "batch object aliased into a second ledger (queue)");
  auto v = run_checker([&](auto& out) { check_memory_layout(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "aliased"));
}

TEST(MemoryLayout, DetectsLiveExceedingTotal) {
  MemoryLayoutSnapshot s = healthy_memory();
  s.arenas[0].live_allocations = s.arenas[0].total_allocations + 1;
  auto v = run_checker([&](auto& out) { check_memory_layout(s, out); });
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(mentions(v, "live allocations exceed"));
}

TEST(MemoryLayout, DetectsImpossibleSmallResidency) {
  MemoryLayoutSnapshot s = healthy_memory();
  // 40 live small blocks but zero pooled pages: nowhere to live.
  s.arenas[0].pages = 0;
  auto v = run_checker([&](auto& out) { check_memory_layout(s, out); });
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(mentions(v, "pooled pages"));
}

TEST(MemoryLayout, ForwardsArenaStructuralDefects) {
  MemoryLayoutSnapshot s = healthy_memory();
  s.arenas[0].defects.push_back(
      "arena freelist for class 3 holds a block outside the page pool");
  auto v = run_checker([&](auto& out) { check_memory_layout(s, out); });
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "outside the page pool"));
}

// --- the auditor itself -------------------------------------------------

TEST(InvariantAuditor, CollectsAcrossCheckers) {
  InvariantAuditor a;
  a.add_checker("alpha", [](std::vector<Violation>& out) {
    out.push_back(Violation{"alpha", "first law broken"});
  });
  a.add_checker("beta", [](std::vector<Violation>&) {});
  a.add_checker("gamma", [](std::vector<Violation>& out) {
    out.push_back(Violation{"gamma", "third law broken"});
  });
  EXPECT_EQ(a.num_checkers(), 3u);
  auto v = a.run_checks();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].checker, "alpha");
  EXPECT_EQ(v[1].checker, "gamma");
  EXPECT_EQ(a.sweeps(), 1u);
}

TEST(InvariantAuditor, CheckThrowsWithFullReport) {
  InvariantAuditor a;
  a.add_checker("alpha", [](std::vector<Violation>& out) {
    out.push_back(Violation{"alpha", "first law broken"});
    out.push_back(Violation{"alpha", "second law broken"});
  });
  try {
    a.check("periodic sweep at t=10s");
    FAIL() << "check() must throw on violations";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violations().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("periodic sweep at t=10s"), std::string::npos);
    EXPECT_NE(what.find("first law broken"), std::string::npos);
    EXPECT_NE(what.find("second law broken"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
  }
}

TEST(InvariantAuditor, CheckPassesQuietly) {
  InvariantAuditor a;
  a.add_checker("quiet", [](std::vector<Violation>&) {});
  EXPECT_NO_THROW(a.check("end of run"));
  EXPECT_NO_THROW(a.check("end of run"));
  EXPECT_EQ(a.sweeps(), 2u);
}

TEST(InvariantAuditor, EnvironmentOverridesDefault) {
  ASSERT_EQ(setenv("WCS_AUDIT", "1", 1), 0);
  EXPECT_TRUE(default_enabled());
  ASSERT_EQ(setenv("WCS_AUDIT", "0", 1), 0);
  EXPECT_FALSE(default_enabled());
  ASSERT_EQ(unsetenv("WCS_AUDIT"), 0);
#ifdef NDEBUG
  EXPECT_FALSE(default_enabled());
#else
  EXPECT_TRUE(default_enabled());
#endif
}

// --- live-scheduler audit ----------------------------------------------

TEST(SchedulerAudit, IncrementalIndexStaysCoherentUnderChurn) {
  auto job = make_job({{0, 1}, {1, 2}, {2, 3}, {0, 3}}, 4);
  // Capacity 2 so the insert sequence below also exercises evictions
  // (and the kEvicted path of the incremental index).
  FakeEngine eng(job, 2, 1, /*capacity=*/2);
  sched::WorkerCentricParams p;
  p.metric = sched::Metric::kCombined;
  sched::WorkerCentricScheduler s(p);
  s.attach(eng);
  s.on_job_submitted();
  for (unsigned f = 0; f < 4; ++f) {
    eng.add_file(SiteId(f % 2), FileId(f));
    eng.add_file(SiteId(f % 2), FileId((f + 2) % 4));
  }
  std::vector<Violation> v;
  s.audit_collect(v);
  EXPECT_TRUE(v.empty());
}

// --- full-simulation integration ---------------------------------------

grid::GridConfig audit_test_config() {
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.tiers.seed = 1;
  c.capacity_files = 50;
  return c;
}

workload::Job small_job() {
  std::vector<std::vector<unsigned>> sets;
  for (unsigned i = 0; i < 30; ++i)
    sets.push_back({i % 20, (i + 7) % 20, (i + 13) % 20});
  return make_job(sets, 20);
}

TEST(AuditIntegration, AuditedRunIsCleanAndSweeps) {
  auto job = small_job();
  grid::GridConfig c = audit_test_config();
  c.audit = true;
  c.audit_interval_events = 25;  // force many periodic sweeps
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  grid::GridSimulation sim(c, job, sched::make_scheduler(spec));
  auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 30u);
  ASSERT_NE(sim.auditor(), nullptr);
  EXPECT_GT(sim.auditor()->sweeps(), 2u);
  // flow-conservation, flow-rates, cache-coherence, block-store,
  // index-coherence, task-lifecycle, event-kernel, memory-layout.
  EXPECT_EQ(sim.auditor()->num_checkers(), 8u);
}

TEST(AuditIntegration, AuditedResultsAreIdentical) {
  auto job = small_job();
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kCombined;

  grid::GridConfig plain = audit_test_config();
  plain.audit = false;
  grid::GridSimulation sim_plain(plain, job, sched::make_scheduler(spec));
  auto a = sim_plain.run();

  grid::GridConfig audited = audit_test_config();
  audited.audit = true;
  audited.audit_interval_events = 10;
  grid::GridSimulation sim_audit(audited, job, sched::make_scheduler(spec));
  auto b = sim_audit.run();

  // Checkers are read-only: the audited run must be event-for-event
  // identical, not just statistically close.
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.total_file_transfers(), b.total_file_transfers());
  EXPECT_EQ(a.total_bytes_transferred(), b.total_bytes_transferred());
}

TEST(AuditIntegration, ObservedAndAuditedResultsAreIdentical) {
  // Auditing AND full observability together must still be read-only:
  // counters, phase scopes, and the span tracer never feed a decision.
  auto job = small_job();
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kCombined;

  grid::GridConfig plain = audit_test_config();
  grid::GridSimulation sim_plain(plain, job, sched::make_scheduler(spec));
  auto a = sim_plain.run();

  grid::GridConfig full = audit_test_config();
  full.audit = true;
  full.audit_interval_events = 10;
  full.obs = obs::Options::all();
  grid::GridSimulation sim_full(full, job, sched::make_scheduler(spec));
  auto b = sim_full.run();

  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.total_file_transfers(), b.total_file_transfers());
  EXPECT_EQ(a.total_bytes_transferred(), b.total_bytes_transferred());

  // And the instruments actually observed the run.
  ASSERT_NE(sim_full.observability(), nullptr);
  const auto* reg = sim_full.observability()->metrics();
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->find_counter("engine.tasks_completed")->value(), 30u);
  EXPECT_EQ(reg->find_counter("sim.events_executed")->value(),
            b.events_executed);
  EXPECT_GT(sim_full.observability()->tracer()->recorded(), 0u);
}

TEST(AuditIntegration, AllSchedulersPassEndOfRunAudit) {
  for (auto algo :
       {sched::Algorithm::kWorkqueue, sched::Algorithm::kXSufferage,
        sched::Algorithm::kOverlap, sched::Algorithm::kRest,
        sched::Algorithm::kCombined}) {
    auto job = small_job();
    grid::GridConfig c = audit_test_config();
    c.audit = true;
    c.audit_interval_events = 50;
    sched::SchedulerSpec spec;
    spec.algorithm = algo;
    grid::GridSimulation sim(c, job, sched::make_scheduler(spec));
    EXPECT_NO_THROW({
      auto r = sim.run();
      EXPECT_EQ(r.tasks_completed, 30u);
    });
  }
}

}  // namespace
}  // namespace wcs::audit
