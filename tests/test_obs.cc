// Unit tests for the observability layer: metrics registry, event
// tracer, phase profiler, JSON writer/parser, and the env gates.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wcs::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(FixedHistogram, BucketsUnderAndOverflow) {
  FixedHistogram h(0, 10, 5);  // buckets of width 2
  h.add(-1);                   // underflow
  h.add(0);                    // bucket 0
  h.add(3);                    // bucket 1
  h.add(9.99);                 // bucket 4
  h.add(10);                   // overflow (hi is exclusive)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 4.0);
}

TEST(FixedHistogram, QuantileEdges) {
  FixedHistogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);  // empty prefix: the lower bound
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(FixedHistogram, QuantileUnderOverflowMapToBounds) {
  FixedHistogram h(10, 20, 2);
  h.add(0);   // underflow
  h.add(99);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(FixedHistogram, MergeSumsBuckets) {
  FixedHistogram a(0, 10, 5);
  FixedHistogram b(0, 10, 5);
  a.add(1);
  b.add(1);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
}

TEST(MetricsRegistry, InstrumentsAreStableAndNamed) {
  MetricsRegistry r;
  Counter& c = r.counter("a.count");
  c.add(3);
  EXPECT_EQ(&r.counter("a.count"), &c);  // same instrument on re-lookup
  EXPECT_EQ(r.find_counter("a.count")->value(), 3u);
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  r.gauge("b.gauge").set(1.0);
  (void)r.histogram("c.hist", 0, 1, 4);
  EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsRegistry, JsonDumpParses) {
  MetricsRegistry r;
  r.counter("events").add(7);
  r.gauge("makespan_s").set(123.5);
  r.histogram("flow_s", 0, 10, 2).add(4);
  std::ostringstream out;
  JsonWriter w(out);
  r.write_json(w);
  JsonValue doc = parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("events")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("makespan_s")->number, 123.5);
  EXPECT_TRUE(doc.find("histograms")->find("flow_s")->is_object());
}

TEST(EventTracer, RingOverwritesOldest) {
  EventTracer t(3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    TraceSpan s;
    s.start = i;
    s.kind = SpanKind::kAssign;
    t.record(s);
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.recorded(), 5u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_DOUBLE_EQ(t.span(0).start, 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(t.span(2).start, 4.0);
}

TEST(EventTracer, ChromeTraceIsValidJson) {
  EventTracer t(16);
  TraceSpan span;
  span.start = 1.5;
  span.duration_s = 0.5;
  span.kind = SpanKind::kCompute;
  span.track = 7;
  span.task = TaskId(3);
  t.record(span);
  TraceSpan instant;
  instant.start = 2.0;
  instant.kind = SpanKind::kComplete;
  t.record(instant);

  std::ostringstream out;
  t.write_chrome_trace(out);
  JsonValue doc = parse_json(out.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  const JsonValue& x = events->array[0];
  EXPECT_EQ(x.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(x.find("ts")->number, 1.5e6);   // simulated µs
  EXPECT_DOUBLE_EQ(x.find("dur")->number, 0.5e6);
  EXPECT_DOUBLE_EQ(x.find("tid")->number, 7.0);
  EXPECT_EQ(events->array[1].find("ph")->string, "i");
}

TEST(SpanKind, InstantClassification) {
  EXPECT_FALSE(is_instant(SpanKind::kFetch));
  EXPECT_FALSE(is_instant(SpanKind::kCompute));
  EXPECT_FALSE(is_instant(SpanKind::kTransfer));
  EXPECT_TRUE(is_instant(SpanKind::kAssign));
  EXPECT_TRUE(is_instant(SpanKind::kEviction));
}

TEST(PhaseProfiler, AccumulatesPerPhase) {
  PhaseProfiler p;
  p.record(Phase::kSchedulerDecision, 100);
  p.record(Phase::kSchedulerDecision, 50);
  p.record(Phase::kReporting, 10);
  EXPECT_EQ(p.slot(Phase::kSchedulerDecision).calls, 2u);
  EXPECT_EQ(p.slot(Phase::kSchedulerDecision).wall_ns, 150u);
  EXPECT_EQ(p.total_wall_ns(), 160u);
}

TEST(PhaseProfiler, ScopedPhaseNullSafeAndRecords) {
  { ScopedPhase noop(nullptr, Phase::kReporting); }  // must not crash
  PhaseProfiler p;
  { ScopedPhase scope(&p, Phase::kCacheEviction); }
  EXPECT_EQ(p.slot(Phase::kCacheEviction).calls, 1u);
}

TEST(JsonWriter, EscapesAndRoundTripsNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(0.1), "0.1");  // shortest round-trip form
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("pi", 3.141592653589793);
  w.member("n", static_cast<std::uint64_t>(1) << 60);
  w.end_object();
  JsonValue doc = parse_json(out.str());
  EXPECT_DOUBLE_EQ(doc.find("pi")->number, 3.141592653589793);
}

TEST(ObsOptions, EnvGates) {
  ::unsetenv("WCS_OBS");
  ::unsetenv("WCS_TRACE");
  Options off = Options::from_env();
  EXPECT_FALSE(off.any());

  ::setenv("WCS_OBS", "1", 1);
  Options obs = Options::from_env();
  EXPECT_TRUE(obs.metrics);
  EXPECT_TRUE(obs.profile);
  EXPECT_FALSE(obs.trace);
  EXPECT_TRUE(obs.trace_path.empty());  // env never sets a path

  ::setenv("WCS_TRACE", "1", 1);
  Options trace = Options::from_env();
  EXPECT_TRUE(trace.trace);
  ::unsetenv("WCS_OBS");
  ::unsetenv("WCS_TRACE");
}

TEST(Observability, BundleRespectsOptions) {
  Options o;
  o.metrics = true;
  Observability bundle(o);
  EXPECT_NE(bundle.metrics(), nullptr);
  EXPECT_EQ(bundle.profiler(), nullptr);
  EXPECT_EQ(bundle.tracer(), nullptr);

  Observability all(Options::all());
  EXPECT_NE(all.metrics(), nullptr);
  EXPECT_NE(all.profiler(), nullptr);
  EXPECT_NE(all.tracer(), nullptr);
  all.finish();  // no path configured: must be a no-op
}

}  // namespace
}  // namespace wcs::obs
