// Run-report schema v1: the writer emits valid reports, and the
// validator (shared with tools/report_lint and CI) rejects every class
// of drift — missing keys, wrong types, out-of-range values, and
// non-monotone timestamps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/run_report.h"

namespace wcs::obs {
namespace {

RunReport sample_report() {
  RunReport r;
  r.bench = "bench_fig5_transfers";
  r.title = "Figure 5: file transfers";
  r.x_axis = "capacity_files";
  r.metric = "transfers per site";
  r.config.tasks = 6000;
  r.config.seeds = 5;
  r.config.jobs = 2;
  r.config.fast = false;
  r.config.audit = true;
  r.config.trace = false;
  r.total_wall_seconds = 12.5;
  for (int p = 0; p < 2; ++p) {
    ReportPoint pt;
    pt.x = 3000.0 * (p + 1);
    pt.x_label = std::to_string(3000 * (p + 1)) + " files";
    pt.wall_seconds = 5.0 * (p + 1);
    ReportRow row;
    row.scheduler = "rest.2";
    row.runs = 5;
    row.makespan_minutes = 1234.5;
    row.transfers_per_site = 5000;
    pt.rows.push_back(row);
    r.points.push_back(std::move(pt));
  }
  return r;
}

JsonValue emit(const RunReport& r) {
  std::ostringstream out;
  r.write(out);
  return parse_json(out.str());
}

bool mentions(const std::vector<std::string>& violations,
              std::string_view needle) {
  for (const auto& v : violations)
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

TEST(ReportSchema, WriterOutputValidates) {
  EXPECT_TRUE(validate_report(emit(sample_report())).empty());
}

TEST(ReportSchema, WriterWithPhasesValidates) {
  PhaseProfiler phases;
  phases.record(Phase::kSchedulerDecision, 1000000);
  RunReport r = sample_report();
  r.phases = &phases;
  JsonValue doc = emit(r);
  ASSERT_TRUE(doc.has("phases"));
  EXPECT_TRUE(validate_report(doc).empty());
}

TEST(ReportSchema, RejectsWrongVersion) {
  JsonValue doc = emit(sample_report());
  for (auto& [k, v] : doc.object)
    if (k == "schema_version") v.number = kReportSchemaVersion + 1;
  EXPECT_TRUE(mentions(validate_report(doc), "schema_version"));
  for (auto& [k, v] : doc.object)
    if (k == "schema_version") v.number = 0;
  EXPECT_TRUE(mentions(validate_report(doc), "schema_version"));
}

// v1 reports (no tenant sections) stay valid under the v2 validator.
TEST(ReportSchema, AcceptsV1Reports) {
  JsonValue doc = emit(sample_report());
  for (auto& [k, v] : doc.object)
    if (k == "schema_version") v.number = 1;
  EXPECT_TRUE(validate_report(doc).empty());
}

// A report with schema-v2 per-tenant sections on every row.
RunReport tenant_report() {
  RunReport r = sample_report();
  for (ReportPoint& pt : r.points)
    for (ReportRow& row : pt.rows) {
      row.jain_fairness = 0.9;
      metrics::TenantResult t;
      t.name = "astro";
      t.weight = 3;
      t.tasks = 40;
      t.completed = 40;
      t.first_arrival_s = 10.0;
      t.time_to_first_task_s = 12.5;
      t.makespan_s = 1000.0;
      t.sojourn_mean_s = 50.0;
      t.sojourn_p50_s = 40.0;
      t.sojourn_p95_s = 90.0;
      t.sojourn_p99_s = 120.0;
      row.tenants.push_back(t);
      t.name = "bio";
      t.weight = 1;
      row.tenants.push_back(t);
    }
  return r;
}

TEST(ReportSchema, TenantSectionsValidateUnderV2) {
  JsonValue doc = emit(tenant_report());
  EXPECT_TRUE(validate_report(doc).empty());
}

TEST(ReportSchema, RejectsTenantSectionsUnderV1) {
  // Per-tenant sections are a v2 feature; a v1 report carrying them is
  // version drift, not a valid old report.
  JsonValue doc = emit(tenant_report());
  for (auto& [k, v] : doc.object)
    if (k == "schema_version") v.number = 1;
  EXPECT_TRUE(mentions(validate_report(doc), "schema_version >= 2"));
}

TEST(ReportSchema, RejectsBadTenantFields) {
  RunReport r = tenant_report();
  r.points[0].rows[0].jain_fairness = 1.5;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "jain_fairness"));

  r = tenant_report();
  r.points[0].rows[0].tenants[0].weight = 0;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "weight"));

  r = tenant_report();
  r.points[0].rows[0].tenants[1].name = "";
  EXPECT_TRUE(mentions(validate_report(emit(r)), "name"));
}

// A report with schema-v2 block-store dedup fields on every row.
RunReport dedup_report() {
  RunReport r = sample_report();
  for (ReportPoint& pt : r.points)
    for (ReportRow& row : pt.rows) {
      row.total_gigabytes_saved = 42.5;
      row.dedup_ratio = 1.24;
    }
  return r;
}

TEST(ReportSchema, DedupFieldsValidateUnderV2) {
  JsonValue doc = emit(dedup_report());
  ASSERT_TRUE(doc.find("points")
                  ->array[0]
                  .find("schedulers")
                  ->array[0]
                  .has("dedup_ratio"));
  EXPECT_TRUE(validate_report(doc).empty());
}

TEST(ReportSchema, WholeFileRowsOmitDedupFields) {
  // bytes-saved == 0 (whole-file mode, or block mode with no sharing)
  // keeps the exact v1 row shape — the optional fields never appear.
  JsonValue doc = emit(sample_report());
  const JsonValue& row =
      doc.find("points")->array[0].find("schedulers")->array[0];
  EXPECT_FALSE(row.has("total_gigabytes_saved"));
  EXPECT_FALSE(row.has("dedup_ratio"));
}

TEST(ReportSchema, RejectsDedupFieldsUnderV1) {
  JsonValue doc = emit(dedup_report());
  for (auto& [k, v] : doc.object)
    if (k == "schema_version") v.number = 1;
  EXPECT_TRUE(mentions(validate_report(doc), "schema_version >= 2"));
}

TEST(ReportSchema, RejectsBadDedupFields) {
  // A dedup ratio below 1 is arithmetically impossible (saved bytes are
  // non-negative), so the validator treats it as drift.
  RunReport r = dedup_report();
  r.points[0].rows[0].dedup_ratio = 0.8;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "dedup_ratio"));
}

TEST(ReportSchema, RejectsMissingTopLevelKeys) {
  for (const char* key : {"bench", "config", "total_wall_seconds", "points"}) {
    JsonValue doc = emit(sample_report());
    std::erase_if(doc.object, [&](const auto& kv) { return kv.first == key; });
    EXPECT_TRUE(mentions(validate_report(doc), key)) << key;
  }
}

TEST(ReportSchema, RejectsEmptyPoints) {
  JsonValue doc = emit(sample_report());
  for (auto& [k, v] : doc.object)
    if (k == "points") v.array.clear();
  EXPECT_TRUE(mentions(validate_report(doc), "points"));
}

TEST(ReportSchema, RejectsNonMonotoneWallSeconds) {
  RunReport r = sample_report();
  r.points[1].wall_seconds = r.points[0].wall_seconds - 1;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "wall_seconds"));
}

TEST(ReportSchema, RejectsNegativeMetric) {
  RunReport r = sample_report();
  r.points[0].rows[0].makespan_minutes = -1;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "makespan_minutes"));
}

TEST(ReportSchema, RejectsZeroRunsAndEmptyNames) {
  RunReport r = sample_report();
  r.points[0].rows[0].runs = 0;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "runs"));
  r = sample_report();
  r.points[0].rows[0].scheduler = "";
  EXPECT_TRUE(mentions(validate_report(emit(r)), "name"));
  r = sample_report();
  r.points[0].x_label = "";
  EXPECT_TRUE(mentions(validate_report(emit(r)), "x_label"));
}

TEST(ReportSchema, RejectsBadConfig) {
  RunReport r = sample_report();
  r.config.jobs = 0;
  EXPECT_TRUE(mentions(validate_report(emit(r)), "jobs"));
}

TEST(ReportSchema, RejectsNonObjectRoot) {
  JsonValue doc;
  doc.type = JsonValue::Type::kArray;
  EXPECT_FALSE(validate_report(doc).empty());
}

TEST(ReportSchema, FileRoundTripValidates) {
  const std::string path = ::testing::TempDir() + "wcs_report_schema.json";
  sample_report().write(path);
  EXPECT_TRUE(validate_report_file(path).empty());
  std::remove(path.c_str());
}

TEST(ReportSchema, FileErrorsBecomeViolations) {
  auto missing = validate_report_file("/nonexistent/wcs_report.json");
  ASSERT_EQ(missing.size(), 1u);

  const std::string path = ::testing::TempDir() + "wcs_report_garbage.json";
  std::ofstream(path) << "{ not json";
  auto garbage = validate_report_file(path);
  ASSERT_EQ(garbage.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcs::obs
