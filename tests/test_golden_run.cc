// Golden-run regression suite: a fixed-seed scenario (5 sites, 500
// Coadd tasks) through every paper scheduler must reproduce these exact
// makespan / transfer / byte totals. The simulation is deterministic
// (see test_determinism), so ANY diff here is a behaviour change — if it
// is intentional, regenerate the table by running this binary and
// copying the values printed on failure.
#include <gtest/gtest.h>

#include <cstdio>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"

namespace wcs::grid {
namespace {

struct Golden {
  const char* scheduler;
  double makespan_s;
  std::uint64_t file_transfers;
  double bytes_transferred;
};

// Regenerate with: test_golden_run --gtest_filter='GoldenRun.*' (failing
// expectations print actual values at full precision below).
constexpr Golden kGolden[] = {
    {"storage-affinity", 184382.32302610984, 8710u, 217750000000},
    {"overlap", 155792.45465528278, 7092u, 177300000000},
    {"rest", 156469.33802937943, 6966u, 174150000000},
    {"combined", 156963.78050540772, 7118u, 177950000000},
    {"rest.2", 161355.45056385815, 7164u, 179100000000},
    {"combined.2", 175261.69922984971, 7764u, 194100000000},
};

metrics::RunResult run_golden_scenario(const sched::SchedulerSpec& spec,
                                       bool incremental_realloc = true) {
  workload::CoaddParams cp;
  cp.num_tasks = 500;
  cp.seed = 20260805;
  auto job = workload::generate_coadd(cp);

  GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 5;
  c.capacity_files = 3000;  // tight enough to exercise eviction
  c.flow.incremental = incremental_realloc;
  return run_once(c, job, spec, /*seed=*/7);
}

TEST(GoldenRun, FixedSeedTotalsAreExact) {
  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto r = run_golden_scenario(specs[i]);
    SCOPED_TRACE(specs[i].name());
    EXPECT_EQ(specs[i].name(), kGolden[i].scheduler);
    EXPECT_EQ(r.tasks_completed, 500u);
    // Print at copy-paste precision so intentional changes are easy to
    // re-bless.
    std::printf("    {\"%s\", %.17g, %lluu, %.17g},\n", specs[i].name().c_str(),
                r.makespan_s,
                static_cast<unsigned long long>(r.total_file_transfers()),
                r.total_bytes_transferred());
    EXPECT_EQ(r.makespan_s, kGolden[i].makespan_s);
    EXPECT_EQ(r.total_file_transfers(), kGolden[i].file_transfers);
    EXPECT_EQ(r.total_bytes_transferred(), kGolden[i].bytes_transferred);
  }
}

TEST(GoldenRun, FlatIndexReproducesGoldensExactly) {
  // The sharded pending-task index (the default) and the flat reference
  // scan must make IDENTICAL choices: same goldens, byte for byte, for
  // all six schedulers. This is the acceptance gate for
  // SchedulerOptions::use_sharded_index (CLI: --flat-index).
  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].options.use_sharded_index = false;
    const auto r = run_golden_scenario(specs[i]);
    SCOPED_TRACE(specs[i].name() + " (flat index)");
    EXPECT_EQ(r.makespan_s, kGolden[i].makespan_s);
    EXPECT_EQ(r.total_file_transfers(), kGolden[i].file_transfers);
    EXPECT_EQ(r.total_bytes_transferred(), kGolden[i].bytes_transferred);
  }
}

TEST(GoldenRun, FullReallocReproducesGoldensExactly) {
  // Incremental dirty-component reallocation (the default) and the full
  // from-scratch recompute must produce IDENTICAL fluid dynamics: same
  // goldens, byte for byte, for all six schedulers. This is the
  // acceptance gate for FlowManagerOptions::incremental (CLI:
  // --full-realloc), matching the flat-index golden gate.
  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto r = run_golden_scenario(specs[i], /*incremental_realloc=*/false);
    SCOPED_TRACE(specs[i].name() + " (full realloc)");
    EXPECT_EQ(r.makespan_s, kGolden[i].makespan_s);
    EXPECT_EQ(r.total_file_transfers(), kGolden[i].file_transfers);
    EXPECT_EQ(r.total_bytes_transferred(), kGolden[i].bytes_transferred);
  }
}

TEST(GoldenRun, WholeFileCacheReproducesGoldensExactly) {
  // Block-granular accounting (the default, content overlap 0) and the
  // whole-file reference cache must make IDENTICAL decisions: same
  // goldens, byte for byte, for all six schedulers. This is the
  // acceptance gate for GridConfig::block_store (CLI:
  // --whole-file-cache), matching the flat-index golden gate.
  workload::CoaddParams cp;
  cp.num_tasks = 500;
  cp.seed = 20260805;
  auto job = workload::generate_coadd(cp);

  GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 5;
  c.capacity_files = 3000;
  c.block_store.reset();  // whole-file reference mode

  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto r = run_once(c, job, specs[i], /*seed=*/7);
    SCOPED_TRACE(specs[i].name() + " (whole-file cache)");
    EXPECT_EQ(r.makespan_s, kGolden[i].makespan_s);
    EXPECT_EQ(r.total_file_transfers(), kGolden[i].file_transfers);
    EXPECT_EQ(r.total_bytes_transferred(), kGolden[i].bytes_transferred);
    EXPECT_EQ(r.total_bytes_saved(), 0.0);
  }
}

TEST(GoldenRun, ClosedWorkloadPlaneReproducesGoldensExactly) {
  // The open-system workload plane's byte-identity gate: a Workload
  // whose schedule is single-tenant arrive-at-t=0 — whether encoded as
  // the compact empty defaults or as explicit all-zero arrival times
  // with a named tenant — must take exactly the legacy closed paths and
  // land on the golden table, byte for byte, for all six schedulers.
  workload::CoaddParams cp;
  cp.num_tasks = 500;
  cp.seed = 20260805;

  workload::Workload compact;
  compact.job = workload::generate_coadd(cp);
  ASSERT_FALSE(compact.open());

  workload::Workload explicit_t0;
  explicit_t0.job = workload::generate_coadd(cp);
  explicit_t0.arrivals.arrival_s.assign(explicit_t0.job.num_tasks(), 0.0);
  explicit_t0.arrivals.tenant_of.assign(explicit_t0.job.num_tasks(), 0);
  explicit_t0.arrivals.tenants.push_back({"solo", 1});
  ASSERT_FALSE(explicit_t0.open());

  GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 5;
  c.capacity_files = 3000;

  auto specs = sched::SchedulerSpec::paper_algorithms();
  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name() + " (workload plane)");
    for (const workload::Workload* wl : {&compact, &explicit_t0}) {
      const auto r = run_once(c, *wl, specs[i], /*topology_seed=*/7);
      EXPECT_EQ(r.makespan_s, kGolden[i].makespan_s);
      EXPECT_EQ(r.total_file_transfers(), kGolden[i].file_transfers);
      EXPECT_EQ(r.total_bytes_transferred(), kGolden[i].bytes_transferred);
    }
  }
}

TEST(GoldenRun, ObservabilityDoesNotPerturbGoldens) {
  // The read-only instrumentation contract, enforced against the golden
  // scenario: a fully-instrumented run must land on the same totals.
  auto spec = sched::SchedulerSpec::paper_algorithms().front();
  const auto plain = run_golden_scenario(spec);

  workload::CoaddParams cp;
  cp.num_tasks = 500;
  cp.seed = 20260805;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 5;
  c.tiers.workers_per_site = 5;
  c.capacity_files = 3000;
  c.obs = obs::Options::all();
  const auto instrumented = run_once(c, job, spec, /*seed=*/7);

  EXPECT_EQ(instrumented.makespan_s, plain.makespan_s);
  EXPECT_EQ(instrumented.events_executed, plain.events_executed);
  EXPECT_EQ(instrumented.total_file_transfers(), plain.total_file_transfers());
  EXPECT_EQ(instrumented.total_bytes_transferred(),
            plain.total_bytes_transferred());
}

}  // namespace
}  // namespace wcs::grid
