// Whole-stack determinism: with every optional subsystem enabled at
// once (replication + churn + timeline + estimate error + randomized
// ChooseTask), two runs from the same seeds must be event-for-event
// identical. This is the strongest regression net for the seed
// discipline (DESIGN.md §5.8) — any ambient entropy or hash-order
// dependence breaks it.
#include <gtest/gtest.h>

#include <algorithm>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"

namespace wcs::grid {
namespace {

GridConfig everything_on() {
  GridConfig c;
  c.tiers.num_sites = 4;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 400;
  c.record_timeline = true;
  c.estimate_error = 2.0;
  replication::DataReplicatorParams rp;
  rp.popularity_threshold = 3;
  rp.check_interval_s = 1000;
  c.replication = rp;
  GridConfig::ChurnParams churn;
  churn.mean_uptime_s = 40000;
  churn.mean_downtime_s = 8000;
  c.churn = churn;
  return c;
}

class FullStackDeterminism
    : public ::testing::TestWithParam<sched::Algorithm> {};

TEST_P(FullStackDeterminism, EventForEventIdentical) {
  workload::CoaddParams cp;
  cp.num_tasks = 120;
  auto job = workload::generate_coadd(cp);
  GridConfig c = everything_on();
  sched::SchedulerSpec spec;
  spec.algorithm = GetParam();
  spec.choose_n = 2;

  auto run = [&] {
    GridSimulation sim(c, job, sched::make_scheduler(spec));
    auto result = sim.run();
    WCS_CHECK(sim.timeline() != nullptr);
    return std::pair{result, sim.timeline()->events()};
  };
  auto [r1, e1] = run();
  auto [r2, e2] = run();

  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.total_file_transfers(), r2.total_file_transfers());
  EXPECT_EQ(r1.events_executed, r2.events_executed);
  EXPECT_EQ(r1.worker_failures, r2.worker_failures);
  EXPECT_EQ(r1.files_replicated, r2.files_replicated);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1[i].time, e2[i].time) << "event " << i;
    EXPECT_EQ(e1[i].kind, e2[i].kind) << "event " << i;
    EXPECT_EQ(e1[i].task, e2[i].task) << "event " << i;
    EXPECT_EQ(e1[i].worker, e2[i].worker) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FullStackDeterminism,
                         ::testing::Values(sched::Algorithm::kWorkqueue,
                                           sched::Algorithm::kStorageAffinity,
                                           sched::Algorithm::kRest,
                                           sched::Algorithm::kCombined,
                                           sched::Algorithm::kXSufferage));

TEST(CrossConfigIndependence, WorkloadUnaffectedByPlatformSeed) {
  // The same CoaddParams must yield the identical job regardless of any
  // platform configuration (no shared RNG state).
  workload::CoaddParams cp;
  cp.num_tasks = 100;
  auto j1 = workload::generate_coadd(cp);
  GridConfig c = everything_on();
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  (void)run_once(c, j1, spec, 1);
  auto j2 = workload::generate_coadd(cp);
  ASSERT_EQ(j1.num_tasks(), j2.num_tasks());
  for (std::size_t i = 0; i < j1.num_tasks(); ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    EXPECT_TRUE(std::ranges::equal(j1.task(id).files, j2.task(id).files));
  }
}

}  // namespace
}  // namespace wcs::grid
