// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace wcs::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(3.0, [&] { order.push_back(3); });
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_in(5.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  double seen = -1;
  s.schedule_in(2.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulator, SchedulingInsideCallbacks) {
  Simulator s;
  std::vector<double> times;
  s.schedule_in(1.0, [&] {
    times.push_back(s.now());
    s.schedule_in(1.0, [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator s;
  bool inner = false;
  s.schedule_in(1.0, [&] {
    s.schedule_in(0.0, [&] {
      inner = true;
      EXPECT_DOUBLE_EQ(s.now(), 1.0);
    });
  });
  s.run();
  EXPECT_TRUE(inner);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator s;
  s.schedule_in(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  EventId id = s.schedule_in(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator s;
  EventId id = s.schedule_in(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  EventId id = s.schedule_in(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(EventId::invalid()));
}

TEST(Simulator, CancelledEventDoesNotAdvanceClock) {
  Simulator s;
  EventId id = s.schedule_in(10.0, [] {});
  s.schedule_in(1.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Simulator, CancelFromInsideCallback) {
  Simulator s;
  bool ran = false;
  EventId victim = s.schedule_in(2.0, [&] { ran = true; });
  s.schedule_in(1.0, [&] { EXPECT_TRUE(s.cancel(victim)); });
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_in(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    s.schedule_in(t, [&times, &s] { times.push_back(s.now()); });
  s.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  s.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator s;
  int count = 0;
  s.schedule_in(2.0, [&] { ++count; });
  s.run_until(2.0);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, EmptyReflectsLiveEvents) {
  Simulator s;
  EventId id = s.schedule_in(1.0, [] {});
  EXPECT_FALSE(s.empty());
  s.cancel(id);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, ExecutedEventsCountsOnlyFired) {
  Simulator s;
  s.schedule_in(1.0, [] {});
  EventId id = s.schedule_in(2.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, LazyDeletionStress) {
  // Heavy cancellation: half the events are tombstoned before they fire.
  // Exercises the lazy-deletion path (tombstones skipped on pop, exact
  // live accounting, cancel-of-fired rejected).
  Simulator s;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 5000; ++i)
    ids.push_back(s.schedule_in((i * 131) % 997, [&] { ++fired; }));
  for (int i = 0; i < 5000; i += 2) EXPECT_TRUE(s.cancel(ids[i]));
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_EQ(fired, 2500);
  EXPECT_EQ(s.executed_events(), 2500u);
  EXPECT_TRUE(s.empty());
  // Every event is now fired or cancelled; cancel is a no-op on both.
  for (EventId id : ids) EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, RunUntilIgnoresCancelledEventsAtTheTop) {
  // A cancelled event before the deadline must not cause run_until to
  // execute a live event that lies beyond the deadline.
  Simulator s;
  bool late_ran = false;
  EventId early = s.schedule_in(1.0, [] {});
  s.schedule_in(10.0, [&] { late_ran = true; });
  s.cancel(early);
  s.run_until(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  double last = -1;
  int count = 0;
  for (int i = 0; i < 10000; ++i) {
    double t = (i * 7919) % 1000;  // scrambled insertion order
    s.schedule_in(t, [&, t] {
      EXPECT_LE(last, s.now());
      EXPECT_DOUBLE_EQ(s.now(), t);
      last = s.now();
      ++count;
    });
  }
  s.run();
  EXPECT_EQ(count, 10000);
}

}  // namespace
}  // namespace wcs::sim
