// Sharded pending-task index (sched/sharded_index.h): structural unit
// tests, the audit checker, and — the load-bearing part — property tests
// that replay random interleavings of cache adds/evictions, assignments,
// completions, and worker failures through a FLAT and a SHARDED scheduler
// side by side, asserting identical decisions at every step. Two mirrored
// FakeEngines are required because each cache has a single listener slot
// and each scheduler owns its engine's slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "audit/checkers.h"
#include "fake_engine.h"
#include "grid/experiment.h"
#include "sched/sharded_index.h"
#include "sched/storage_affinity.h"
#include "sched/worker_centric.h"
#include "workload/coadd.h"

namespace wcs::sched {
namespace {

using testing::FakeEngine;
using testing::make_job;

TaskId tid(unsigned v) { return TaskId(v); }

// --- ShardedTaskIndex structural tests ---------------------------------

TEST(ShardedTaskIndex, InsertEraseUpdateMaintainBuckets) {
  ShardedTaskIndex idx;
  idx.reset(8);
  EXPECT_TRUE(idx.empty());

  idx.insert(tid(0), /*key=*/3);
  idx.insert(tid(1), /*key=*/3);
  idx.insert(tid(2), /*key=*/7);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.bucket_count(), 2u);
  EXPECT_TRUE(idx.contains(tid(1)));
  EXPECT_FALSE(idx.contains(tid(5)));
  EXPECT_EQ(idx.key_of(tid(2)), 7u);

  // Re-keying moves between buckets; the vacated bucket disappears.
  idx.update(tid(2), /*key=*/3);
  EXPECT_EQ(idx.bucket_count(), 1u);
  EXPECT_EQ(idx.key_of(tid(2)), 3u);
  // A no-op update leaves everything in place.
  idx.update(tid(2), /*key=*/3);
  EXPECT_EQ(idx.size(), 3u);

  idx.erase(tid(0));
  idx.erase(tid(1));
  idx.erase(tid(2));
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.bucket_count(), 0u);
  EXPECT_TRUE(idx.structural_defects().empty());
}

TEST(ShardedTaskIndex, BucketOrderIsRankDescThenLowId) {
  ShardedTaskIndex idx;
  idx.reset(4);
  idx.insert(tid(2), /*key=*/1, /*rank=*/5);
  idx.insert(tid(0), /*key=*/1, /*rank=*/9);
  idx.insert(tid(3), /*key=*/1, /*rank=*/5);
  idx.insert(tid(1), /*key=*/1, /*rank=*/9);

  std::vector<TaskId> order;
  for (const auto& e : idx.buckets().at(1)) order.push_back(e.task);
  // rank 9 before rank 5; within a rank, ascending id (the flat
  // ChooseTask tie-break).
  EXPECT_EQ(order, (std::vector<TaskId>{tid(0), tid(1), tid(2), tid(3)}));
}

TEST(ShardedTaskIndex, PreferHighIdReversesTieOrder) {
  ShardedTaskIndex idx(/*prefer_high_id=*/true);
  idx.reset(4);
  for (unsigned t : {1u, 3u, 0u, 2u}) idx.insert(tid(t), /*key=*/4);

  std::vector<TaskId> order;
  for (const auto& e : idx.buckets().at(4)) order.push_back(e.task);
  // Equal ranks, descending id: the storage-affinity replica tie-break.
  EXPECT_EQ(order, (std::vector<TaskId>{tid(3), tid(2), tid(1), tid(0)}));
}

TEST(ShardedTaskIndex, ResetDropsEverything) {
  ShardedTaskIndex idx;
  idx.reset(2);
  idx.insert(tid(0), 1);
  idx.insert(tid(1), 2);
  idx.reset(5);
  EXPECT_TRUE(idx.empty());
  EXPECT_FALSE(idx.contains(tid(0)));
  idx.insert(tid(4), 9, 3);
  EXPECT_EQ(idx.rank_of(tid(4)), 3u);
  EXPECT_TRUE(idx.structural_defects().empty());
}

TEST(ShardedIndexAudit, CheckerFlagsCountMismatchAndDefects) {
  audit::ShardedIndexSnapshot snap;
  snap.label = "test shard";
  snap.indexed = 2;
  snap.expected = 3;
  snap.defects.push_back("task #7 filed under the wrong key");

  std::vector<audit::Violation> out;
  audit::check_sharded_index(snap, out);
  ASSERT_EQ(out.size(), 2u);
  for (const audit::Violation& v : out) EXPECT_EQ(v.checker, "sharded-index");

  // A coherent snapshot reports nothing.
  out.clear();
  snap.indexed = 3;
  snap.defects.clear();
  audit::check_sharded_index(snap, out);
  EXPECT_TRUE(out.empty());
}

// --- Worker-centric property test --------------------------------------
//
// Random interleavings of {cache add (with LRU eviction pressure),
// peek, assign, complete, worker failure} through a flat and a sharded
// scheduler over mirrored engines: every choice, every recorded
// assignment, and every audit sweep must agree.

workload::Job random_job(std::mt19937_64& rng, std::size_t num_tasks,
                         std::size_t num_files) {
  std::vector<std::vector<unsigned>> sets(num_tasks);
  for (auto& files : sets) {
    const std::size_t k = 1 + rng() % 4;
    std::set<unsigned> chosen;
    while (chosen.size() < k)
      chosen.insert(static_cast<unsigned>(rng() % num_files));
    files.assign(chosen.begin(), chosen.end());
  }
  return make_job(std::move(sets), num_files);
}

void expect_no_violations(const Scheduler& sched, int step) {
  std::vector<audit::Violation> v;
  sched.audit_collect(v);
  ASSERT_TRUE(v.empty()) << "step " << step << ": [" << v.front().checker
                         << "] " << v.front().message;
}

void run_worker_centric_property(Metric metric, int choose_n,
                                 CombinedFormula formula,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t num_tasks = 36;
  const std::size_t num_files = 48;
  const std::size_t num_sites = 3;
  const std::size_t workers_per_site = 2;
  const std::size_t num_workers = num_sites * workers_per_site;
  const workload::Job job = random_job(rng, num_tasks, num_files);

  // Small capacity: adds overflow constantly, exercising kEvicted re-keys.
  FakeEngine flat_eng(job, num_sites, workers_per_site, /*capacity=*/10);
  FakeEngine shard_eng(job, num_sites, workers_per_site, /*capacity=*/10);

  WorkerCentricParams params;
  params.metric = metric;
  params.choose_n = choose_n;
  params.combined_formula = formula;
  WorkerCentricParams flat_params = params;
  flat_params.options.use_sharded_index = false;
  ASSERT_TRUE(params.options.use_sharded_index);  // the default
  WorkerCentricScheduler flat(flat_params);
  WorkerCentricScheduler sharded(params);

  // Pre-warm a few files so build_index() seeds non-trivial counters.
  for (int i = 0; i < 8; ++i) {
    SiteId s(static_cast<SiteId::underlying_type>(rng() % num_sites));
    FileId f(static_cast<FileId::underlying_type>(rng() % num_files));
    flat_eng.add_file(s, f);
    shard_eng.add_file(s, f);
  }
  flat.attach(flat_eng);
  sharded.attach(shard_eng);
  flat.on_job_submitted();
  sharded.on_job_submitted();

  std::vector<std::pair<TaskId, WorkerId>> live;  // assigned, not done
  for (int step = 0; step < 600; ++step) {
    const unsigned op = static_cast<unsigned>(rng() % 100);
    if (op < 45) {
      SiteId s(static_cast<SiteId::underlying_type>(rng() % num_sites));
      FileId f(static_cast<FileId::underlying_type>(rng() % num_files));
      flat_eng.add_file(s, f);
      shard_eng.add_file(s, f);
    } else if (op < 60) {
      if (flat.pending_count() == 0) continue;
      // Pure decision comparison; consumes the same RNG draw on both.
      SiteId s(static_cast<SiteId::underlying_type>(rng() % num_sites));
      const TaskId a = flat.peek_choice(s);
      const TaskId b = sharded.peek_choice(s);
      ASSERT_EQ(a, b) << "step " << step << " site " << s;
    } else if (op < 85) {
      if (flat.pending_count() == 0) continue;
      WorkerId w(static_cast<WorkerId::underlying_type>(rng() % num_workers));
      flat.on_worker_idle(w);
      sharded.on_worker_idle(w);
      ASSERT_FALSE(flat_eng.assignments.empty());
      ASSERT_EQ(flat_eng.assignments.back(), shard_eng.assignments.back());
      live.push_back(flat_eng.assignments.back());
    } else if (op < 93) {
      if (live.empty()) continue;
      const std::size_t i = rng() % live.size();
      const auto [t, w] = live[i];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      flat.on_task_completed(t, w);
      sharded.on_task_completed(t, w);
    } else {
      if (live.empty()) continue;
      // Crash a worker that holds work; its tasks return to the bag with
      // counters rebuilt from the live caches (the re_add_pending path).
      const WorkerId w = live[rng() % live.size()].second;
      std::vector<TaskId> lost;
      std::erase_if(live, [&](const std::pair<TaskId, WorkerId>& inst) {
        if (inst.second != w) return false;
        lost.push_back(inst.first);
        return true;
      });
      flat.on_worker_failed(w, lost);
      sharded.on_worker_failed(w, lost);
    }
    ASSERT_EQ(flat_eng.assignments, shard_eng.assignments) << "step " << step;
    if (step % 37 == 0) {
      expect_no_violations(sharded, step);
      expect_no_violations(flat, step);
    }
  }
}

TEST(ShardedIndexProperty, OverlapChooseOne) {
  run_worker_centric_property(Metric::kOverlap, 1, CombinedFormula::kProse,
                              0xA11CE);
}
TEST(ShardedIndexProperty, OverlapChooseTwo) {
  run_worker_centric_property(Metric::kOverlap, 2, CombinedFormula::kProse,
                              0xB0B);
}
TEST(ShardedIndexProperty, RestChooseOne) {
  run_worker_centric_property(Metric::kRest, 1, CombinedFormula::kProse,
                              0xC4B1E);
}
TEST(ShardedIndexProperty, RestChooseTwo) {
  run_worker_centric_property(Metric::kRest, 2, CombinedFormula::kProse,
                              0xD0D0);
}
TEST(ShardedIndexProperty, CombinedChooseOne) {
  run_worker_centric_property(Metric::kCombined, 1, CombinedFormula::kProse,
                              0xE66);
}
TEST(ShardedIndexProperty, CombinedChooseTwo) {
  run_worker_centric_property(Metric::kCombined, 2, CombinedFormula::kProse,
                              0xF00D);
}
TEST(ShardedIndexProperty, CombinedVerbatimChooseTwo) {
  run_worker_centric_property(Metric::kCombined, 2,
                              CombinedFormula::kVerbatim, 0xFEED);
}

// --- Storage-affinity property test ------------------------------------

TEST(ShardedIndexProperty, StorageAffinityReplicaPicksMatchFlat) {
  std::mt19937_64 rng(20260805);
  const std::size_t num_tasks = 30;
  const std::size_t num_files = 40;
  const std::size_t num_sites = 3;
  const std::size_t workers_per_site = 2;
  const std::size_t num_workers = num_sites * workers_per_site;
  const workload::Job job = random_job(rng, num_tasks, num_files);

  FakeEngine flat_eng(job, num_sites, workers_per_site, /*capacity=*/12);
  FakeEngine shard_eng(job, num_sites, workers_per_site, /*capacity=*/12);

  StorageAffinityParams flat_params;
  flat_params.options.use_sharded_index = false;
  StorageAffinityScheduler flat(flat_params);
  StorageAffinityScheduler sharded{StorageAffinityParams{}};
  flat.attach(flat_eng);
  sharded.attach(shard_eng);
  flat.on_job_submitted();
  sharded.on_job_submitted();
  // The initial distribution is index-independent but must agree too.
  ASSERT_EQ(flat_eng.assignments, shard_eng.assignments);

  std::set<unsigned> dead;
  int kills = 0;
  auto random_alive_worker = [&] {
    unsigned w;
    do {
      w = static_cast<unsigned>(rng() % num_workers);
    } while (dead.count(w));
    return WorkerId(static_cast<WorkerId::underlying_type>(w));
  };

  for (int step = 0; step < 500; ++step) {
    const unsigned op = static_cast<unsigned>(rng() % 100);
    if (op < 40) {
      SiteId s(static_cast<SiteId::underlying_type>(rng() % num_sites));
      FileId f(static_cast<FileId::underlying_type>(rng() % num_files));
      flat_eng.add_file(s, f);
      shard_eng.add_file(s, f);
    } else if (op < 75) {
      // Idle worker asks for a replica: the hot path under comparison.
      const WorkerId w = random_alive_worker();
      flat.on_worker_idle(w);
      sharded.on_worker_idle(w);
    } else if (op < 92) {
      // Complete some incomplete task with a live instance (first
      // finisher wins; siblings are cancelled — compare those too).
      TaskId victim = TaskId::invalid();
      const std::size_t start = rng() % num_tasks;
      for (std::size_t i = 0; i < num_tasks; ++i) {
        TaskId t(
            static_cast<TaskId::underlying_type>((start + i) % num_tasks));
        if (!flat.completed(t) && !flat.placements(t).empty()) {
          victim = t;
          break;
        }
      }
      if (!victim.valid()) continue;
      const WorkerId w = flat.placements(victim).front();
      flat.on_task_completed(victim, w);
      sharded.on_task_completed(victim, w);
    } else if (kills < 2) {
      const WorkerId w = random_alive_worker();
      dead.insert(static_cast<unsigned>(w.value()));
      flat_eng.dead_workers.insert(w);
      shard_eng.dead_workers.insert(w);
      std::vector<TaskId> lost;
      for (std::size_t i = 0; i < num_tasks; ++i) {
        TaskId t(static_cast<TaskId::underlying_type>(i));
        if (flat.completed(t)) continue;
        const auto& inst = flat.placements(t);
        if (std::find(inst.begin(), inst.end(), w) != inst.end())
          lost.push_back(t);
      }
      flat.on_worker_failed(w, lost);
      sharded.on_worker_failed(w, lost);
      ++kills;
    }
    ASSERT_EQ(flat_eng.assignments, shard_eng.assignments) << "step " << step;
    ASSERT_EQ(flat_eng.cancellations, shard_eng.cancellations)
        << "step " << step;
    if (step % 41 == 0) {
      expect_no_violations(sharded, step);
      expect_no_violations(flat, step);  // flat has no index: vacuous pass
    }
  }
}

TEST(ShardedIndexProperty, StorageAffinityOrphanPickupMatchesFlat) {
  // Total-outage corner: the last instance of a task dies while every
  // other worker is down, so the task is parked (flat: empty placements;
  // sharded: the orphan set) until some worker goes idle again.
  std::mt19937_64 rng(7);
  const workload::Job job = random_job(rng, /*num_tasks=*/3, /*num_files=*/6);
  FakeEngine flat_eng(job, /*num_sites=*/1, /*workers_per_site=*/2, 10);
  FakeEngine shard_eng(job, /*num_sites=*/1, /*workers_per_site=*/2, 10);

  StorageAffinityParams flat_params;
  flat_params.options.use_sharded_index = false;
  StorageAffinityScheduler flat(flat_params);
  StorageAffinityScheduler sharded{StorageAffinityParams{}};
  flat.attach(flat_eng);
  sharded.attach(shard_eng);
  flat.on_job_submitted();
  sharded.on_job_submitted();
  ASSERT_EQ(flat_eng.assignments, shard_eng.assignments);

  auto lost_on = [&](WorkerId w) {
    std::vector<TaskId> lost;
    for (unsigned i = 0; i < 3; ++i) {
      const auto& inst = flat.placements(tid(i));
      if (!flat.completed(tid(i)) &&
          std::find(inst.begin(), inst.end(), w) != inst.end())
        lost.push_back(tid(i));
    }
    return lost;
  };

  // Kill worker 0 (its tasks re-place onto worker 1), then worker 1 with
  // no live worker left: everything becomes an orphan.
  const WorkerId w0(0u), w1(1u);
  flat_eng.dead_workers.insert(w0);
  shard_eng.dead_workers.insert(w0);
  auto lost0 = lost_on(w0);
  flat.on_worker_failed(w0, lost0);
  sharded.on_worker_failed(w0, lost0);
  ASSERT_EQ(flat_eng.assignments, shard_eng.assignments);

  flat_eng.dead_workers.insert(w1);
  shard_eng.dead_workers.insert(w1);
  auto lost1 = lost_on(w1);
  ASSERT_FALSE(lost1.empty());
  flat.on_worker_failed(w1, lost1);
  sharded.on_worker_failed(w1, lost1);
  expect_no_violations(sharded, /*step=*/-1);

  // Worker 0 recovers and drains the orphans lowest-id-first; both paths
  // must hand out the same tasks in the same order.
  flat_eng.dead_workers.erase(w0);
  shard_eng.dead_workers.erase(w0);
  for (std::size_t i = 0; i < lost1.size(); ++i) {
    flat.on_worker_idle(w0);
    sharded.on_worker_idle(w0);
  }
  EXPECT_EQ(flat_eng.assignments, shard_eng.assignments);
  expect_no_violations(sharded, /*step=*/-2);
}

// --- End-to-end eviction-churn stress under --audit --------------------
//
// A full simulation with tight caches (constant eviction) AND worker
// churn (crash/recover, re_add_pending/orphan traffic), swept by the
// invariant auditor: the sharded and flat runs must land on identical
// totals, and no audit sweep may fire (a violation aborts the run).

TEST(ShardedIndexStress, EvictionChurnUnderAuditMatchesFlat) {
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  cp.seed = 99;
  const auto job = workload::generate_coadd(cp);

  grid::GridConfig c;
  c.tiers.num_sites = 4;
  c.tiers.workers_per_site = 3;
  c.capacity_files = 1000;  // tight: constant eviction churn
  c.churn = grid::GridConfig::ChurnParams{
      .mean_uptime_s = 4 * 3600.0, .mean_downtime_s = 1800.0, .seed = 17};
  c.audit = true;
  c.audit_interval_events = 2000;  // sweep often

  sched::SchedulerSpec specs[3];
  specs[0].algorithm = sched::Algorithm::kStorageAffinity;
  specs[1].algorithm = sched::Algorithm::kRest;
  specs[1].choose_n = 2;
  specs[2].algorithm = sched::Algorithm::kCombined;

  for (sched::SchedulerSpec& spec : specs) {
    SCOPED_TRACE(spec.name());
    spec.options.use_sharded_index = true;
    const auto sharded = grid::run_once(c, job, spec, /*seed=*/3);
    spec.options.use_sharded_index = false;
    const auto flat = grid::run_once(c, job, spec, /*seed=*/3);
    EXPECT_EQ(sharded.makespan_s, flat.makespan_s);
    EXPECT_EQ(sharded.tasks_completed, flat.tasks_completed);
    EXPECT_EQ(sharded.total_file_transfers(), flat.total_file_transfers());
    EXPECT_EQ(sharded.total_bytes_transferred(),
              flat.total_bytes_transferred());
  }
}

}  // namespace
}  // namespace wcs::sched
