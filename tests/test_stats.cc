// Property tests for the per-tenant statistics helpers behind the
// schema-v2 run-report sections: Jain's fairness index and the
// GroupedSamples per-group percentile accumulator.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace wcs {
namespace {

TEST(JainFairness, DegenerateInputsArePerfectlyFair) {
  // Empty, single-party, and all-zero allocations are fair by
  // convention — a closed single-tenant run must report J == 1.
  EXPECT_EQ(jain_fairness_index({}), 1.0);
  std::vector<double> one = {42.0};
  EXPECT_EQ(jain_fairness_index(one), 1.0);
  std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_EQ(jain_fairness_index(zeros), 1.0);
}

TEST(JainFairness, EqualSharesAreOneMonopolyIsOneOverN) {
  std::vector<double> equal = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(equal), 1.0);

  // One party takes everything: J = 1/n exactly.
  std::vector<double> monopoly = {12.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(monopoly), 0.25);

  // A skewed-but-not-degenerate split lands strictly between.
  std::vector<double> skew = {9.0, 3.0, 3.0, 1.0};
  const double j = jain_fairness_index(skew);
  EXPECT_GT(j, 0.25);
  EXPECT_LT(j, 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  // J(c * x) == J(x): the index measures proportion, not magnitude.
  std::vector<double> x = {1.0, 4.0, 2.0, 7.0};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(1000.0 * v);
  EXPECT_DOUBLE_EQ(jain_fairness_index(x), jain_fairness_index(scaled));
}

TEST(GroupedSamples, SingleTenantPercentilesMatchRawSamples) {
  GroupedSamples gs(1);
  std::vector<double> raw = {5, 1, 9, 3, 7};
  for (double v : raw) gs.add(0, v);
  EXPECT_EQ(gs.count(0), raw.size());
  EXPECT_DOUBLE_EQ(gs.mean_of(0), 5.0);
  EXPECT_DOUBLE_EQ(gs.percentile_of(0, 50), percentile(raw, 50));
  EXPECT_DOUBLE_EQ(gs.percentile_of(0, 95), percentile(raw, 95));
  // Empty groups report 0 so tenant rows stay finite.
  GroupedSamples empty(2);
  EXPECT_EQ(empty.percentile_of(1, 99), 0.0);
  EXPECT_EQ(empty.mean_of(1), 0.0);
}

TEST(GroupedSamples, MergeIsAssociativeOnQuantiles) {
  // Split a random sample stream across three shards, merge them in
  // both association orders, and demand identical per-group quantiles
  // — the property that lets per-tenant sojourn sets be accumulated in
  // any run order.
  Rng rng(20260808);
  std::vector<GroupedSamples> shards(3, GroupedSamples(2));
  GroupedSamples reference(2);
  for (int i = 0; i < 300; ++i) {
    const auto group = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const double v = rng.uniform_real(0, 1e6);
    shards[static_cast<std::size_t>(rng.uniform_int(0, 2))].add(group, v);
    reference.add(group, v);
  }

  GroupedSamples left(2);  // (a + b) + c
  left.merge(shards[0]);
  left.merge(shards[1]);
  left.merge(shards[2]);

  GroupedSamples right(2);  // a + (b + c)
  GroupedSamples bc(2);
  bc.merge(shards[1]);
  bc.merge(shards[2]);
  right.merge(shards[0]);
  right.merge(bc);

  for (std::size_t g = 0; g < 2; ++g) {
    ASSERT_EQ(left.count(g), right.count(g));
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(left.percentile_of(g, p), right.percentile_of(g, p));
      // Shard-merge order may differ from arrival order; quantiles
      // must still match the unsharded reference because percentile()
      // sorts.
      EXPECT_DOUBLE_EQ(left.percentile_of(g, p),
                       reference.percentile_of(g, p));
    }
  }
}

TEST(SubstreamSeed, DerivedStreamsAreDistinctAndStable) {
  // Per-tenant RNG substreams: same (root, stream) always derives the
  // same seed; nearby streams and nearby roots all land far apart.
  const std::uint64_t root = 101;
  EXPECT_EQ(substream_seed(root, 3), substream_seed(root, 3));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 16; ++s) seen.push_back(substream_seed(root, s));
  for (std::uint64_t s = 0; s < 16; ++s)
    seen.push_back(substream_seed(root + 1, s));
  for (std::size_t i = 0; i < seen.size(); ++i)
    for (std::size_t j = i + 1; j < seen.size(); ++j)
      EXPECT_NE(seen[i], seen[j]) << "collision at " << i << "," << j;
}

}  // namespace
}  // namespace wcs
