// Memory-lean hot structures (PR 6): the NodeArena page allocator, the
// global string interner, and the small flat containers (InlineVec, Csr,
// DenseIdSet) that replaced per-task node containers, plus the
// allocation-free contracts the event loop relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/arena.h"
#include "common/csr.h"
#include "common/dense_id_set.h"
#include "common/ids.h"
#include "common/inline_vec.h"
#include "common/interner.h"
#include "grid/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/coadd.h"

namespace wcs::common {
namespace {

// --- NodeArena -----------------------------------------------------------

TEST(NodeArena, ServesSizeClassesAndCounts) {
  NodeArena arena;
  void* a = arena.allocate(24, 8);
  void* b = arena.allocate(24, 8);
  void* c = arena.allocate(512, 16);  // largest small class
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a, b);
  const NodeArena::Stats& st = arena.stats();
  EXPECT_EQ(st.total_allocations, 3u);
  EXPECT_EQ(st.live_allocations, 3u);
  EXPECT_EQ(st.large_allocations, 0u);
  EXPECT_EQ(st.pages, 1u);
  EXPECT_EQ(st.page_bytes, 64u * 1024u);
  arena.deallocate(a, 24, 8);
  arena.deallocate(b, 24, 8);
  arena.deallocate(c, 512, 16);
  EXPECT_EQ(arena.stats().live_allocations, 0u);
}

TEST(NodeArena, FreelistRecyclesSameClass) {
  NodeArena arena;
  void* a = arena.allocate(40, 8);
  arena.deallocate(a, 40, 8);
  // Same size class (33..48 bytes) must reuse the freed block.
  void* b = arena.allocate(33, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.stats().freelist_hits, 1u);
  arena.deallocate(b, 33, 8);
}

TEST(NodeArena, LargeBlocksBypassPages) {
  NodeArena arena;
  void* big = arena.allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 4096);
  const NodeArena::Stats& st = arena.stats();
  EXPECT_EQ(st.large_allocations, 1u);
  EXPECT_EQ(st.large_live, 1u);
  EXPECT_EQ(st.pages, 0u);  // no page mapped for a large block
  arena.deallocate(big, 4096, 16);
  EXPECT_EQ(arena.stats().large_live, 0u);
  EXPECT_TRUE(arena.structural_defects().empty());
}

TEST(NodeArena, GrowsAcrossPages) {
  NodeArena arena(1024);  // tiny pages: 2 blocks of 512 per page
  std::vector<void*> blocks;
  for (int i = 0; i < 10; ++i) blocks.push_back(arena.allocate(512, 16));
  EXPECT_EQ(arena.stats().pages, 5u);
  for (void* p : blocks) arena.deallocate(p, 512, 16);
  EXPECT_TRUE(arena.structural_defects().empty());
}

TEST(NodeArena, ResetRewindsOverPooledPages) {
  NodeArena arena(1024);
  // First run: record the block addresses of a fixed allocation script.
  auto script = [&arena] {
    std::vector<void*> out;
    for (int i = 0; i < 6; ++i) out.push_back(arena.allocate(200, 16));
    // Interleave a free so a later allocation takes the freelist path.
    arena.deallocate(out[2], 200, 16);
    out.push_back(arena.allocate(200, 16));
    out.erase(out.begin() + 2);
    return out;
  };
  std::vector<void*> first = script();
  const std::size_t pages_after_first = arena.stats().pages;
  for (void* p : first) arena.deallocate(p, 200, 16);
  arena.reset();

  // Replay: the same script over the SAME pages yields the same
  // addresses and maps no new pages — the arena-reuse property the
  // run_seeds loop depends on.
  std::vector<void*> second = script();
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.stats().pages, pages_after_first);
  EXPECT_EQ(arena.stats().resets, 1u);
  for (void* p : second) arena.deallocate(p, 200, 16);
  EXPECT_TRUE(arena.structural_defects().empty());
}

TEST(NodeArena, ResetWithLiveAllocationsThrows) {
  NodeArena arena;
  void* p = arena.allocate(32, 8);
  EXPECT_THROW(arena.reset(), std::logic_error);
  arena.deallocate(p, 32, 8);
  EXPECT_NO_THROW(arena.reset());
}

TEST(ArenaAlloc, BacksNodeContainers) {
  NodeArena arena;
  {
    using Alloc = ArenaAlloc<std::pair<const int, int>>;
    std::map<int, int, std::less<int>, Alloc> m{Alloc(&arena)};
    for (int i = 0; i < 100; ++i) m[i] = i * i;
    EXPECT_GE(arena.stats().live_allocations, 100u);
    EXPECT_EQ(m.at(40), 1600);
    m.clear();
  }
  EXPECT_EQ(arena.stats().live_allocations, 0u);
  arena.reset();
  EXPECT_TRUE(arena.structural_defects().empty());
}

// --- StringInterner ------------------------------------------------------

TEST(StringInterner, RoundTripsAndDeduplicates) {
  StringInterner interner;
  Symbol a = interner.intern("coadd");
  Symbol b = interner.intern("zipf");
  Symbol a2 = interner.intern("coadd");
  EXPECT_EQ(a, a2);  // same text, same symbol
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.view(a), "coadd");
  EXPECT_EQ(interner.view(b), "zipf");
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_TRUE(interner.self_check().empty());
}

TEST(StringInterner, DistinguishesNearCollisions) {
  // Many keys engineered to crowd the same buckets: distinct texts must
  // stay distinct symbols and every one must round-trip.
  StringInterner interner;
  std::vector<Symbol> symbols;
  std::vector<std::string> texts;
  for (int i = 0; i < 500; ++i) {
    texts.push_back("site-" + std::to_string(i % 50) + "/task-" +
                    std::to_string(i));
    symbols.push_back(interner.intern(texts.back()));
  }
  for (std::size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(interner.view(symbols[i]), texts[i]);
    EXPECT_EQ(interner.intern(texts[i]), symbols[i]);
  }
  EXPECT_EQ(interner.size(), texts.size());
  EXPECT_TRUE(interner.self_check().empty());
}

TEST(StringInterner, UnknownSymbolRejected) {
  StringInterner interner;
  EXPECT_FALSE(interner.known(Symbol(3)));
  EXPECT_THROW((void)interner.view(Symbol(3)), std::logic_error);
}

// --- InlineVec -----------------------------------------------------------

TEST(InlineVec, InlineThenSpill) {
  InlineVec<int, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);  // still inline
  v.push_back(3);  // spills to the heap
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(9));
}

TEST(InlineVec, EraseValuePreservesOrder) {
  InlineVec<int, 2> v;
  for (int i = 1; i <= 5; ++i) v.push_back(i);
  EXPECT_TRUE(v.erase_value(3));
  EXPECT_FALSE(v.erase_value(3));
  ASSERT_EQ(v.size(), 4u);
  const int expect[] = {1, 2, 4, 5};
  EXPECT_TRUE(std::equal(v.begin(), v.end(), expect));
}

TEST(InlineVec, CopyAndMoveKeepContents) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  InlineVec<int, 2> copy = v;
  EXPECT_TRUE(std::equal(copy.begin(), copy.end(), v.begin()));
  InlineVec<int, 2> moved = std::move(v);
  ASSERT_EQ(moved.size(), 8u);
  EXPECT_EQ(moved[7], 7);
}

// --- Csr -----------------------------------------------------------------

TEST(Csr, TwoPassBuildPreservesRowOrder) {
  Csr<int> csr;
  csr.reset(3);
  csr.count(0);
  csr.count(0);
  csr.count(2);
  csr.finalize();
  csr.push(0, 10);
  csr.push(0, 11);
  csr.push(2, 30);
  ASSERT_EQ(csr.row_size(0), 2u);
  EXPECT_EQ(csr.row(0)[0], 10);
  EXPECT_EQ(csr.row(0)[1], 11);
  EXPECT_EQ(csr.row_size(1), 0u);
  EXPECT_EQ(csr.row(2)[0], 30);
  EXPECT_TRUE(csr.row_bounds_sound());
}

TEST(Csr, EraseSwapMatchesVectorMotion) {
  Csr<int> csr;
  csr.reset(1);
  for (int i = 0; i < 4; ++i) csr.count(0);
  csr.finalize();
  for (int i = 0; i < 4; ++i) csr.push(0, i);
  // erase_swap(1): last element (3) moves into slot 1 — exactly the
  // `*it = vec.back(); vec.pop_back()` motion of the old flat vectors.
  EXPECT_TRUE(csr.erase_swap(0, 1));
  ASSERT_EQ(csr.row_size(0), 3u);
  EXPECT_EQ(csr.row(0)[0], 0);
  EXPECT_EQ(csr.row(0)[1], 3);
  EXPECT_EQ(csr.row(0)[2], 2);
  EXPECT_FALSE(csr.erase_swap(0, 99));
  // Re-push within the row's capacity (crash-recovery re-add).
  csr.push(0, 7);
  EXPECT_EQ(csr.row_size(0), 4u);
  EXPECT_TRUE(csr.row_bounds_sound());
}

// --- DenseIdSet ----------------------------------------------------------

TEST(DenseIdSet, InsertEraseFirst) {
  DenseIdSet s;
  s.reset(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.first(), DenseIdSet::kNpos);
  EXPECT_TRUE(s.insert(42));
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));  // already present
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.first(), 7u);  // lowest id first, like std::set::begin()
  EXPECT_TRUE(s.erase(7));
  EXPECT_FALSE(s.erase(7));
  EXPECT_EQ(s.first(), 42u);
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(41));
}

// --- allocation-free contracts ------------------------------------------

TEST(AllocFree, DisabledInstrumentsAllocateNothing) {
  if (!alloc_counting_enabled())
    GTEST_SKIP() << "allocation counting compiled out (sanitizer build)";
  // The disabled path is a null-instrument branch at every call site;
  // the enabled steady state (counter bumps, ring overwrite past
  // capacity) must also be allocation-free.
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("events");
  obs::EventTracer tracer(64);
  obs::TraceSpan span;
  span.kind = obs::SpanKind::kAssign;
  for (int i = 0; i < 200; ++i) tracer.record(span);  // fill the ring

  obs::Counter* disabled = nullptr;
  const AllocSnapshot before = alloc_snapshot();
  for (int i = 0; i < 1000; ++i) {
    if (disabled) disabled->add(1);  // the component-side disabled branch
    counter.add(1);
    tracer.record(span);  // overwrite path: no push_back growth
  }
  const AllocSnapshot after = alloc_snapshot();
  EXPECT_EQ(allocations_between(before, after), 0u);
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(AllocFree, ArenaSteadyStateChurnAllocatesNothing) {
  if (!alloc_counting_enabled())
    GTEST_SKIP() << "allocation counting compiled out (sanitizer build)";
  NodeArena arena;
  // Warm up: one block resident so the page is mapped.
  void* warm = arena.allocate(64, 16);
  const AllocSnapshot before = alloc_snapshot();
  for (int i = 0; i < 10000; ++i) {
    void* p = arena.allocate(64, 16);
    arena.deallocate(p, 64, 16);
  }
  const AllocSnapshot after = alloc_snapshot();
  EXPECT_EQ(allocations_between(before, after), 0u);
  // First round bump-allocates; every later round recycles it.
  EXPECT_EQ(arena.stats().freelist_hits, 9999u);
  arena.deallocate(warm, 64, 16);
}

// --- run_seeds reuse property -------------------------------------------

TEST(ArenaReuse, RepeatedSeedsAreByteIdentical) {
  // Each seed's simulation builds and tears down the arena-backed flow
  // table and scheduler indexes; running the seed list twice must
  // reproduce identical totals (no state may leak through the arenas,
  // pools, or the global interner between runs).
  workload::CoaddParams cp;
  cp.num_tasks = 120;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 400;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  const std::uint64_t seeds[] = {3, 7, 11};
  auto first = grid::run_seeds(c, job, spec, seeds);
  auto second = grid::run_seeds(c, job, spec, seeds);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].makespan_s, second[i].makespan_s);
    EXPECT_EQ(first[i].events_executed, second[i].events_executed);
    EXPECT_EQ(first[i].total_file_transfers(),
              second[i].total_file_transfers());
    EXPECT_EQ(first[i].total_bytes_transferred(),
              second[i].total_bytes_transferred());
  }
}

}  // namespace
}  // namespace wcs::common
