// Statistical shape tests for the Rng distribution helpers the
// simulation depends on (churn inter-arrival times, worker-speed
// sampling, workload jitter).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace wcs {
namespace {

TEST(Distributions, NormalMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Distributions, ExponentialMoments) {
  Rng rng(6);
  RunningStats s;
  const double rate = 1.0 / 500.0;  // mean 500 (a churn-like scale)
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(rate));
  EXPECT_NEAR(s.mean(), 500.0, 15.0);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 500.0, 25.0);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Distributions, ExponentialMemorylessTail) {
  // P(X > 2m) ~ e^-2 ~ 0.135 for mean m.
  Rng rng(7);
  int over = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.exponential(1.0 / 100.0) > 200.0) ++over;
  EXPECT_NEAR(static_cast<double>(over) / kDraws, std::exp(-2.0), 0.01);
}

TEST(Distributions, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.015);
}

TEST(Distributions, UniformRealMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform_real(2.0, 6.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.05);
  // Var of U(a,b) = (b-a)^2/12.
  EXPECT_NEAR(s.variance(), 16.0 / 12.0, 0.05);
}

TEST(Distributions, IndexIsUniform) {
  Rng rng(10);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 16000; ++i) ++counts[rng.index(8)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

}  // namespace
}  // namespace wcs
