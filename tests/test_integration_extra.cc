// Additional cross-stack integration tests: control-latency accounting,
// engine introspection, transfer listeners, degenerate platforms, and
// scale smoke checks.
#include <gtest/gtest.h>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"
#include "workload/generators.h"

namespace wcs::grid {
namespace {

workload::Job one_task_job(std::size_t files = 2,
                           Bytes file_size = megabytes(25)) {
  workload::Job job;
  job.set_name("one");
  job.catalog = workload::FileCatalog(files, file_size);
  std::vector<FileId> task_files;
  for (std::size_t f = 0; f < files; ++f)
    task_files.push_back(FileId(static_cast<FileId::underlying_type>(f)));
  job.add_task(task_files, 1e-6);
  return job;
}

sched::SchedulerSpec wq() {
  sched::SchedulerSpec s;
  s.algorithm = sched::Algorithm::kWorkqueue;
  return s;
}

TEST(EngineIntrospection, SiteAndWorkerMapping) {
  auto job = one_task_job();
  GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 10;
  GridSimulation sim(c, job, sched::make_scheduler(wq()));
  EXPECT_EQ(sim.num_sites(), 3u);
  EXPECT_EQ(sim.num_workers(), 6u);
  EXPECT_EQ(sim.site_of(WorkerId(0)), SiteId(0));
  EXPECT_EQ(sim.site_of(WorkerId(1)), SiteId(0));
  EXPECT_EQ(sim.site_of(WorkerId(2)), SiteId(1));
  EXPECT_EQ(sim.site_of(WorkerId(5)), SiteId(2));
  for (unsigned w = 0; w < 6; ++w) {
    EXPECT_TRUE(sim.worker_alive(WorkerId(w)));
    EXPECT_EQ(sim.worker_backlog(WorkerId(w)), 0u);
    EXPECT_GT(sim.worker_info(WorkerId(w)).mflops, 0.0);
  }
  EXPECT_EQ(sim.replicator(), nullptr);
}

TEST(EngineIntrospection, TaskCompletionQueries) {
  auto job = one_task_job();
  GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 10;
  GridSimulation sim(c, job, sched::make_scheduler(wq()));
  EXPECT_FALSE(sim.task_completed(TaskId(0)));
  (void)sim.run();
  EXPECT_TRUE(sim.task_completed(TaskId(0)));
  EXPECT_EQ(sim.tasks_completed(), 1u);
}

TEST(ControlLatency, ContributesButDoesNotDominate) {
  // With zero-byte-ish compute and one file, makespan = request RTT +
  // transfer; the control overhead must be well under a second.
  auto job = one_task_job(1);
  GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 1;
  c.tiers.jitter = 0.0;
  c.capacity_files = 10;
  GridSimulation sim(c, job, sched::make_scheduler(wq()));
  auto r = sim.run();
  EXPECT_GT(r.makespan_s, 100.0);        // the 25 MB / 2 Mbit/s transfer
  EXPECT_LT(r.makespan_s, 100.0 + 1.0);  // latencies: well under 1 s
}

TEST(SingleSiteSingleWorker, WholeJobSequential) {
  workload::GeneratorParams gp;
  gp.num_tasks = 5;
  gp.files_per_task = 3;
  gp.num_files = 15;
  gp.file_size = megabytes(1);
  auto job = workload::generate_partitioned(gp);
  GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 100;
  auto r = run_once(c, job, wq(), 1);
  EXPECT_EQ(r.tasks_completed, 5u);
  EXPECT_EQ(r.sites.size(), 1u);
  EXPECT_EQ(r.sites[0].batches_served, 5u);
  EXPECT_EQ(r.total_file_transfers(), 15u);
}

TEST(ManyWorkersFewTasks, IdleWorkersAreHarmless) {
  auto job = one_task_job();
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 8;
  c.capacity_files = 50;
  auto r = run_once(c, job, wq(), 1);
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.assignments, 1u);
}

TEST(AllAlgorithmsAgreeOnTotalWork, SameJobSameFloor) {
  // With capacity >= catalog and 1 site, every scheduler must transfer
  // exactly the distinct files once — total work is scheduler-invariant.
  workload::CoaddParams cp;
  cp.num_tasks = 60;
  auto job = workload::generate_coadd(cp);
  auto stats = workload::compute_stats(job);
  GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 2;
  c.capacity_files = job.catalog.num_files();
  for (const auto& spec : sched::SchedulerSpec::paper_algorithms()) {
    auto r = run_once(c, job, spec, 1);
    EXPECT_EQ(r.total_file_transfers(), stats.distinct_files)
        << spec.name();
  }
}

TEST(ReplicaAccounting, CancelledFetchKeepsBytesConsistent) {
  // Under heavy replication (few tasks, many workers), cancelled batches
  // still account their transferred bytes; per-site bytes must equal
  // transfers * file size exactly.
  workload::CoaddParams cp;
  cp.num_tasks = 30;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 3;
  c.capacity_files = 1000;
  sched::SchedulerSpec sa;
  sa.algorithm = sched::Algorithm::kStorageAffinity;
  sa.max_replicas = 3;
  auto r = run_once(c, job, sa, 1);
  EXPECT_EQ(r.tasks_completed, 30u);
  for (const auto& s : r.sites)
    EXPECT_NEAR(s.bytes_transferred,
                static_cast<double>(s.file_transfers) * 25e6, 1.0);
}

TEST(Scale, QuarterWorkloadFinishesQuickly) {
  // Wall-clock guard: the full experiment pipeline must stay fast enough
  // for the figure benches (~seconds per run).
  workload::CoaddParams cp;
  cp.num_tasks = 1500;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 10;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 6000;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kCombined;
  spec.choose_n = 2;
  auto r = run_once(c, job, spec, 1);
  EXPECT_EQ(r.tasks_completed, 1500u);
  EXPECT_GT(r.events_executed, 1500u);
}

TEST(WorkloadScaling, MakespanGrowsWithTasks) {
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 2000;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  double prev = 0;
  for (std::size_t tasks : {50u, 100u, 200u}) {
    workload::CoaddParams cp;
    cp.num_tasks = tasks;
    auto job = workload::generate_coadd(cp);
    auto r = run_once(c, job, spec, 1);
    EXPECT_GT(r.makespan_s, prev);
    prev = r.makespan_s;
  }
}

TEST(SiteStatsShape, MatchesConfiguredSites) {
  workload::CoaddParams cp;
  cp.num_tasks = 40;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 7;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 500;
  auto r = run_once(c, job, wq(), 3);
  EXPECT_EQ(r.sites.size(), 7u);
  std::uint64_t batches = 0;
  for (const auto& s : r.sites) batches += s.batches_served;
  EXPECT_EQ(batches, 40u);
}

}  // namespace
}  // namespace wcs::grid
